package serve_test

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"adaptnoc"
	"adaptnoc/internal/serve"
	"adaptnoc/internal/snap"
)

// newTestServer starts a daemon behind httptest and registers a drain on
// cleanup. Tests that park slow jobs must DELETE them before returning so
// the drain stays fast.
func newTestServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	srv := serve.New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("drain on cleanup: %v", err)
		}
		ts.Close()
	})
	return srv, ts.URL
}

// fastRequest is a cheap two-app baseline run: a couple of thousand cycles
// finishes in well under a second.
func fastRequest(seed uint64) serve.Request {
	return serve.Request{
		Config: adaptnoc.Config{
			Design: adaptnoc.DesignBaseline,
			Apps: []adaptnoc.AppSpec{
				{Profile: "bfs", Region: adaptnoc.Region{X: 0, Y: 0, W: 4, H: 4}},
				{Profile: "canneal", Region: adaptnoc.Region{X: 4, Y: 0, W: 4, H: 4}},
			},
			Seed:        seed,
			EpochCycles: 1000,
		},
		Cycles: 3000,
	}
}

// slowRequest occupies a worker for a long time unless canceled: the
// cancellation poll runs every 1024 cycles, so DELETE still lands quickly.
func slowRequest(seed uint64) serve.Request {
	req := fastRequest(seed)
	req.Config.EpochCycles = 0 // default 50000-cycle epochs
	req.Cycles = 2_000_000_000
	return req
}

func submit(t *testing.T, base string, req serve.Request) (serve.JobInfo, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(blob, &info); err != nil {
			t.Fatalf("decoding %s: %v", blob, err)
		}
	}
	return info, resp
}

func getJob(t *testing.T, base, id string) serve.JobInfo {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %s", id, resp.Status)
	}
	var info serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := getJob(t, base, id)
		if info.State.Terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, info.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitState(t *testing.T, base, id string, want serve.State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := getJob(t, base, id)
		if info.State == want {
			return
		}
		if info.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s in state %s, want %s", id, info.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cancelJob(t *testing.T, base, id string) serve.JobInfo {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestSubmitAndComplete(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	info, resp := submit(t, base, fastRequest(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if info.Cache != "miss" || info.Key == "" {
		t.Errorf("fresh submission: cache=%s key=%q", info.Cache, info.Key)
	}
	done := waitTerminal(t, base, info.ID, 30*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Seq == 0 {
		t.Error("terminal job has no completion sequence number")
	}
	res, err := adaptnoc.ParseResults(done.Results)
	if err != nil {
		t.Fatalf("results do not parse: %v", err)
	}
	if res.Cycles != 3000 {
		t.Errorf("ran %d cycles, want 3000", res.Cycles)
	}
}

// An invalid configuration must come back as a structured 400 naming the
// offending field by its JSON path and carrying a remediation hint, so a
// client can fix the request without reading simulator source.
func TestSubmitValidationErrorIsActionable(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	req := fastRequest(1)
	req.Config.Apps[1].Region = adaptnoc.Region{X: 6, Y: 0, W: 4, H: 4} // off the 8x8 chip
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sims", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config: %s", resp.Status)
	}
	var fields struct {
		Error string `json:"error"`
		Field string `json:"field"`
		Hint  string `json:"hint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fields); err != nil {
		t.Fatal(err)
	}
	if fields.Field != "config.apps[1].region" {
		t.Errorf("field = %q, want config.apps[1].region", fields.Field)
	}
	if fields.Hint == "" || !strings.Contains(fields.Error, "outside the 8x8 grid") {
		t.Errorf("error lacks remediation: error=%q hint=%q", fields.Error, fields.Hint)
	}
}

// Resubmitting an identical request must come back from the cache, marked
// as a hit, with byte-identical results — determinism makes the cache
// exact, not approximate.
func TestCacheHitByteIdentical(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	first, _ := submit(t, base, fastRequest(2))
	done := waitTerminal(t, base, first.ID, 30*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("first job ended %s: %s", done.State, done.Error)
	}

	second, resp := submit(t, base, fastRequest(2))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cached submission status %s, want 200", resp.Status)
	}
	if second.Cache != "hit" || second.State != serve.StateDone {
		t.Fatalf("resubmission: cache=%s state=%s", second.Cache, second.State)
	}
	if !bytes.Equal(second.Results, done.Results) {
		t.Error("cached results are not byte-identical to the computed results")
	}
	if second.Key != done.Key {
		t.Errorf("keys differ: %s vs %s", second.Key, done.Key)
	}

	// A different seed is a different simulation: miss.
	third, _ := submit(t, base, fastRequest(3))
	if third.Cache != "miss" {
		t.Errorf("different seed served from cache")
	}
	cancelJob(t, base, third.ID)
}

func TestQueueFullBackpressure(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1})

	running, _ := submit(t, base, slowRequest(10))
	waitState(t, base, running.ID, serve.StateRunning, 10*time.Second)
	queued, resp := submit(t, base, slowRequest(11))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission: %s, want 202", resp.Status)
	}

	_, resp = submit(t, base, slowRequest(12))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submission: %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// Canceling the queued job frees its slot without a worker.
	info := cancelJob(t, base, queued.ID)
	if info.State != serve.StateCanceled {
		t.Errorf("queued job after DELETE: %s, want canceled", info.State)
	}
	cancelJob(t, base, running.ID)
	waitTerminal(t, base, running.ID, 10*time.Second)
}

// DELETE on a running job must take effect at the next cancellation poll —
// comfortably within one control epoch, observed here as wall-clock
// seconds rather than the hours the full window would take.
func TestCancelRunningJob(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})
	info, _ := submit(t, base, slowRequest(20))
	waitState(t, base, info.ID, serve.StateRunning, 10*time.Second)
	cancelJob(t, base, info.ID)
	done := waitTerminal(t, base, info.ID, 10*time.Second)
	if done.State != serve.StateCanceled {
		t.Fatalf("job ended %s, want canceled", done.State)
	}
}

// With one worker, jobs complete in submission order and the completion
// sequence numbers record it.
func TestOrderedCompletion(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})
	var ids []string
	for seed := uint64(30); seed < 33; seed++ {
		info, resp := submit(t, base, fastRequest(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", seed, resp.Status)
		}
		ids = append(ids, info.ID)
	}
	for i, id := range ids {
		done := waitTerminal(t, base, id, 30*time.Second)
		if done.State != serve.StateDone {
			t.Fatalf("job %s ended %s: %s", id, done.State, done.Error)
		}
		if done.Seq != int64(i+1) {
			t.Errorf("job %s completed with seq %d, want %d", id, done.Seq, i+1)
		}
	}
}

func TestSSEEventStream(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	info, _ := submit(t, base, fastRequest(40))

	resp, err := http.Get(base + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	// The handler closes the stream after the final "done" event, so the
	// whole stream can be read to EOF.
	stream, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	frames := strings.Split(strings.TrimSuffix(string(stream), "\n\n"), "\n\n")
	var epochs []serve.Event
	var final serve.JobInfo
	sawDone := false
	for _, frame := range frames {
		lines := strings.SplitN(frame, "\n", 2)
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
			t.Fatalf("malformed SSE frame: %q", frame)
		}
		data := strings.TrimPrefix(lines[1], "data: ")
		switch name := strings.TrimPrefix(lines[0], "event: "); name {
		case "epoch":
			var ev serve.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("epoch frame %q: %v", data, err)
			}
			epochs = append(epochs, ev)
		case "done":
			if err := json.Unmarshal([]byte(data), &final); err != nil {
				t.Fatalf("done frame %q: %v", data, err)
			}
			sawDone = true
		default:
			t.Fatalf("unexpected event %q", name)
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done event")
	}
	// 3000 cycles at 1000-cycle epochs: three progress reports, with the
	// simulated clock advancing monotonically to the full window.
	if len(epochs) != 3 {
		t.Fatalf("got %d epoch events, want 3", len(epochs))
	}
	for i, ev := range epochs {
		if want := int64(1000 * (i + 1)); ev.Cycle != want {
			t.Errorf("epoch %d at cycle %d, want %d", i, ev.Cycle, want)
		}
	}
	if final.State != serve.StateDone {
		t.Errorf("final event state %s: %s", final.State, final.Error)
	}
	if len(final.Results) != 0 {
		t.Error("done event carries the results document; it should be fetched instead")
	}
}

// Shutdown must stop admission immediately but let admitted jobs finish.
func TestDrainOnShutdown(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	base := ts.URL

	info, _ := submit(t, base, fastRequest(50))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	done := getJob(t, base, info.ID)
	if done.State != serve.StateDone {
		t.Errorf("in-flight job after drain: %s (%s), want done", done.State, done.Error)
	}
	if _, resp := submit(t, base, fastRequest(51)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while drained: %s, want 503", resp.Status)
	}
	if resp, err := http.Get(base + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz while drained: %s, want 503", resp.Status)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	post := func(body string) (int, string) {
		resp, err := http.Post(base+"/v1/sims", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(blob)
	}

	if code, body := post(`{"config": {"design": "warp-drive", "apps": []}}`); code != http.StatusBadRequest {
		t.Errorf("unknown design: %d %s", code, body)
	}
	if code, body := post(`{"config": {"design": "baseline", "apps": [{"profile": "bfs", "region": {"w": 4, "h": 4}}]}, "turbo": true}`); code != http.StatusBadRequest || !strings.Contains(body, "turbo") {
		t.Errorf("unknown field not named: %d %s", code, body)
	}
	if code, body := post(`{"config": {"design": "baseline", "apps": [{"profile": "bfs", "region": {"w": 4, "h": 4}}]}, "cycles": -5}`); code != http.StatusBadRequest || !strings.Contains(body, "cycles") {
		t.Errorf("negative window not named: %d %s", code, body)
	}
	if code, body := post(`{"config": {"design": "baseline", "apps": [{"profile": "nope", "region": {"w": 4, "h": 4}}]}}`); code != http.StatusBadRequest || !strings.Contains(body, "config.apps[0].profile") {
		t.Errorf("bad profile not named by JSON path: %d %s", code, body)
	}

	if resp, err := http.Get(base + "/v1/jobs/job-999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("missing job: %s, want 404", resp.Status)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	first, _ := submit(t, base, fastRequest(60))
	waitTerminal(t, base, first.ID, 30*time.Second)
	submit(t, base, fastRequest(60)) // cache hit

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	body := string(blob)
	for _, want := range []string{
		"adaptnoc_serve_jobs_completed_total 2", // the hit is born done
		"adaptnoc_serve_cache_hits_total 1",
		"adaptnoc_serve_cache_misses_total 1",
		"adaptnoc_serve_queue_depth 0",
		"adaptnoc_serve_job_seconds_count 1",
		`adaptnoc_serve_job_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// The jobs listing carries summaries (no result payloads) for every job.
func TestJobListing(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	a, _ := submit(t, base, fastRequest(70))
	waitTerminal(t, base, a.ID, 30*time.Second)

	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].ID != a.ID {
		t.Fatalf("listing = %+v, want the one submitted job", infos)
	}
	if len(infos[0].Results) != 0 {
		t.Error("listing carries result payloads")
	}
}

// The disk cache makes results survive a daemon restart.
func TestServerCacheDirPersistence(t *testing.T) {
	dir := t.TempDir()
	srv := serve.New(serve.Options{CacheDir: dir})
	ts := httptest.NewServer(srv.Handler())
	info, _ := submit(t, ts.URL, fastRequest(80))
	done := waitTerminal(t, ts.URL, info.ID, 30*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// A new daemon over the same directory answers from disk.
	srv2 := serve.New(serve.Options{CacheDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		ts2.Close()
	}()
	again, resp := submit(t, ts2.URL, fastRequest(80))
	if resp.StatusCode != http.StatusOK || again.Cache != "hit" {
		t.Fatalf("restarted daemon: status %s cache=%s, want 200 hit", resp.Status, again.Cache)
	}
	if !bytes.Equal(again.Results, done.Results) {
		t.Error("disk-cached results differ from the original run")
	}
}

// A budgeted request runs to completion and reports execution times.
func TestBudgetedRequest(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	req := serve.Request{
		Config: adaptnoc.Config{
			Design: adaptnoc.DesignBaseline,
			Apps: []adaptnoc.AppSpec{
				{Profile: "bfs", Region: adaptnoc.Region{X: 0, Y: 0, W: 4, H: 4}, InstrBudget: 2000},
			},
			Seed:        2021,
			EpochCycles: 1000,
		},
	}
	info, _ := submit(t, base, req)
	done := waitTerminal(t, base, info.ID, 60*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	res, err := adaptnoc.ParseResults(done.Results)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Apps) != 1 || res.Apps[0].ExecTime < 0 {
		t.Fatalf("budgeted app did not finish: %+v", res.Apps)
	}
}

// TestResumeAfterCancelByteIdentical is the serving keystone for
// checkpoint/restore: cancel a running job, observe that a checkpoint was
// persisted, resume it through the endpoint, and require the spliced
// result to be byte-identical to an uninterrupted run — and to land in the
// cache under the same key.
func TestResumeAfterCancelByteIdentical(t *testing.T) {
	ckptDir := t.TempDir()
	_, base := newTestServer(t, serve.Options{Workers: 1, CheckpointDir: ckptDir})

	req := fastRequest(40)
	req.Cycles = 300000 // seconds of wall clock: long enough to cancel mid-run

	// The uninterrupted reference: the same request served by a separate
	// daemon that never cancels.
	_, refBase := newTestServer(t, serve.Options{Workers: 1})
	refInfo, _ := submit(t, refBase, req)
	refDone := waitTerminal(t, refBase, refInfo.ID, 60*time.Second)
	if refDone.State != serve.StateDone {
		t.Fatalf("reference job ended %s: %s", refDone.State, refDone.Error)
	}
	want := []byte(refDone.Results)

	info, _ := submit(t, base, req)
	waitState(t, base, info.ID, serve.StateRunning, 10*time.Second)
	time.Sleep(50 * time.Millisecond) // let the run get past cycle zero
	cancelJob(t, base, info.ID)
	canceled := waitTerminal(t, base, info.ID, 10*time.Second)
	if canceled.State != serve.StateCanceled {
		t.Fatalf("job ended %s, want canceled", canceled.State)
	}
	if !canceled.Checkpoint {
		t.Fatal("canceled job reports no checkpoint")
	}
	ckpt := filepath.Join(ckptDir, canceled.Key+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	resp, err := http.Post(base+"/v1/jobs/"+info.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var resumed serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&resumed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume: %s", resp.Status)
	}
	if !resumed.Resumed || resumed.Key != info.Key {
		t.Fatalf("resumed job: resumed=%v key=%s, want resumed under key %s", resumed.Resumed, resumed.Key, info.Key)
	}

	done := waitTerminal(t, base, resumed.ID, 60*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("resumed job ended %s: %s", done.State, done.Error)
	}
	if !bytes.Equal(done.Results, want) {
		t.Error("resumed results differ from the uninterrupted run")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after successful resume")
	}

	// The spliced result is cache-eligible: resubmitting the original
	// request is a hit with the same bytes.
	again, resp2 := submit(t, base, req)
	if resp2.StatusCode != http.StatusOK || again.Cache != "hit" {
		t.Fatalf("resubmission after resume: %s cache=%s, want 200 hit", resp2.Status, again.Cache)
	}
	if !bytes.Equal(again.Results, want) {
		t.Error("cached resumed results differ from the uninterrupted run")
	}
}

// Resume is only meaningful for canceled jobs; anything else is a conflict,
// and unknown jobs are not found.
func TestResumeRequiresCanceledJob(t *testing.T) {
	_, base := newTestServer(t, serve.Options{})
	info, _ := submit(t, base, fastRequest(41))
	done := waitTerminal(t, base, info.ID, 30*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	resp, err := http.Post(base+"/v1/jobs/"+info.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("resume of a done job: %s, want 409", resp.Status)
	}
	resp, err = http.Post(base+"/v1/jobs/absent/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("resume of an unknown job: %s, want 404", resp.Status)
	}
}

// Without a checkpoint directory, resume still works — it reruns from
// cycle zero, which determinism makes indistinguishable in the results.
func TestResumeWithoutCheckpointDir(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})
	info, _ := submit(t, base, slowRequest(42))
	waitState(t, base, info.ID, serve.StateRunning, 10*time.Second)
	cancelJob(t, base, info.ID)
	canceled := waitTerminal(t, base, info.ID, 10*time.Second)
	if canceled.State != serve.StateCanceled {
		t.Fatalf("job ended %s, want canceled", canceled.State)
	}
	if canceled.Checkpoint {
		t.Error("checkpoint reported with no checkpoint directory configured")
	}
	// Resume the canceled slow job and cancel it again: the endpoint
	// admits it as a fresh run.
	resp, err := http.Post(base+"/v1/jobs/"+info.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var resumed serve.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&resumed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !resumed.Resumed {
		t.Fatalf("resume: %s resumed=%v", resp.Status, resumed.Resumed)
	}
	waitState(t, base, resumed.ID, serve.StateRunning, 10*time.Second)
	cancelJob(t, base, resumed.ID)
	waitTerminal(t, base, resumed.ID, 10*time.Second)
}

// submitQuery posts a request with extra query parameters (?lease=,
// ?resume=1) appended to /v1/sims.
func submitQuery(t *testing.T, base string, req serve.Request, query string) (serve.JobInfo, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sims?"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var info serve.JobInfo
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(blob, &info); err != nil {
			t.Fatalf("decoding %s: %v", blob, err)
		}
	}
	return info, resp
}

// A full queue's Retry-After must be jittered — uniform over 1-5 seconds,
// not a constant — so a fleet of backed-off coordinators cannot
// synchronize into retry storms.
func TestRetryAfterJittered(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1, QueueDepth: 1, JitterSeed: 7})
	running, _ := submit(t, base, slowRequest(90))
	waitState(t, base, running.ID, serve.StateRunning, 10*time.Second)
	queued, _ := submit(t, base, slowRequest(91))

	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		_, resp := submit(t, base, slowRequest(92))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-capacity submission %d: %s, want 429", i, resp.Status)
		}
		ra := resp.Header.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 || secs > 5 {
			t.Fatalf("Retry-After = %q, want an integer in [1,5]", ra)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Errorf("16 rejections all answered Retry-After %v; want jitter", seen)
	}
	cancelJob(t, base, queued.ID)
	cancelJob(t, base, running.ID)
	waitTerminal(t, base, running.ID, 10*time.Second)
}

// A lease-scoped job whose lease lapses without renewal cancels itself.
func TestLeaseExpiryCancels(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})
	info, resp := submitQuery(t, base, slowRequest(93), "lease=150ms")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("lease submission: %s", resp.Status)
	}
	done := waitTerminal(t, base, info.ID, 30*time.Second)
	if done.State != serve.StateCanceled {
		t.Fatalf("lapsed lease ended %s, want canceled", done.State)
	}
}

// Renewing a lease keeps the job alive to completion; renewing a job that
// has no lease is a conflict, as is a malformed lease duration.
func TestLeaseRenewal(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})
	req := fastRequest(94)
	req.Cycles = 120000 // long enough that the lease must be renewed at least once
	info, resp := submitQuery(t, base, req, "lease=1s")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("lease submission: %s", resp.Status)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getJob(t, base, info.ID)
		if st.State.Terminal() {
			if st.State != serve.StateDone {
				t.Fatalf("renewed job ended %s: %s", st.State, st.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		r, err := http.Post(base+"/v1/jobs/"+info.ID+"/lease", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusConflict {
			t.Fatalf("renewal: %s", r.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}

	plain, _ := submit(t, base, fastRequest(95))
	waitTerminal(t, base, plain.ID, 30*time.Second)
	r, err := http.Post(base+"/v1/jobs/"+plain.ID+"/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("renewal of a lease-less job: %s, want 409", r.Status)
	}
	if _, resp := submitQuery(t, base, fastRequest(96), "lease=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed lease: %s, want 400", resp.Status)
	}
}

// GET /v1/jobs/{id}/checkpoint serves a lease-scoped job's latest
// in-memory snapshot with its simulated clock, and answers 404 with a
// remediation hint when no checkpoint exists.
func TestJobCheckpointEndpoint(t *testing.T) {
	_, base := newTestServer(t, serve.Options{Workers: 1})

	// No checkpoint: 404 with a hint naming the lease mechanism.
	plain, _ := submit(t, base, fastRequest(97))
	waitTerminal(t, base, plain.ID, 30*time.Second)
	resp, err := http.Get(base + "/v1/jobs/" + plain.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint of a lease-less job: %s, want 404", resp.Status)
	}
	if !strings.Contains(string(blob), "hint") || !strings.Contains(string(blob), "lease") {
		t.Errorf("404 body lacks a hint: %s", blob)
	}

	// A leased job snapshots every slice; the endpoint serves the blob.
	leased, _ := submitQuery(t, base, slowRequest(98), "lease=120s")
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, base, leased.ID).CheckpointCycle == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leased job never reported a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Get(base + "/v1/jobs/" + leased.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	cyc, err := strconv.ParseInt(resp.Header.Get("X-Checkpoint-Cycle"), 10, 64)
	if err != nil || cyc <= 0 {
		t.Errorf("X-Checkpoint-Cycle = %q, want a positive cycle", resp.Header.Get("X-Checkpoint-Cycle"))
	}
	if _, err := adaptnoc.RestoreSim(blob); err != nil {
		t.Errorf("served blob does not restore: %v", err)
	}
	cancelJob(t, base, leased.ID)
	waitTerminal(t, base, leased.ID, 10*time.Second)
}

// The handoff path end to end on one daemon: snapshot a leased job, kill
// it, deposit the blob under its key, and resume by key — the spliced
// result must be byte-identical to an uninterrupted run.
func TestCheckpointHandoffByteIdentical(t *testing.T) {
	req := fastRequest(99)
	req.Cycles = 300000

	_, refBase := newTestServer(t, serve.Options{Workers: 1})
	refInfo, _ := submit(t, refBase, req)
	refDone := waitTerminal(t, refBase, refInfo.ID, 60*time.Second)
	if refDone.State != serve.StateDone {
		t.Fatalf("reference job ended %s: %s", refDone.State, refDone.Error)
	}

	_, base := newTestServer(t, serve.Options{Workers: 1})
	leased, _ := submitQuery(t, base, req, "lease=120s")
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, base, leased.ID).CheckpointCycle == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leased job never reported a snapshot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/v1/jobs/" + leased.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch: %s", resp.Status)
	}
	cancelJob(t, base, leased.ID)
	waitTerminal(t, base, leased.ID, 10*time.Second)

	put, err := http.NewRequest(http.MethodPut, base+"/v1/checkpoints/"+leased.Key, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint deposit: %s", presp.Status)
	}

	resumed, rresp := submitQuery(t, base, req, "resume=1")
	if rresp.StatusCode != http.StatusAccepted || !resumed.Resumed {
		t.Fatalf("resume submission: %s resumed=%v", rresp.Status, resumed.Resumed)
	}
	done := waitTerminal(t, base, resumed.ID, 60*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("resumed job ended %s: %s", done.State, done.Error)
	}
	if !bytes.Equal(done.Results, refDone.Results) {
		t.Error("handed-off resume differs from the uninterrupted run")
	}

	// A corrupt deposit is refused at the door.
	bad, _ := http.NewRequest(http.MethodPut, base+"/v1/checkpoints/"+leased.Key, strings.NewReader("not a checkpoint"))
	bresp, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt deposit: %s, want 400", bresp.Status)
	}
}

// The checkpoint endpoint's delta negotiation: a caller naming a chain
// position it already holds (?base=<hex body hash>) receives only the
// delta frames extending it, and applying them locally reproduces the
// byte-identical full blob. Determinism lets the test mint a valid base
// token without racing the worker: a local run of the same config to a
// slice boundary produces the exact bytes (hence hash) the server's chain
// holds at that cycle.
func TestCheckpointDeltaNegotiation(t *testing.T) {
	req := fastRequest(41)
	req.Cycles = 8000 // 8 slices: full base at 1000, seven frames after

	_, base := newTestServer(t, serve.Options{Workers: 1})
	leased, _ := submitQuery(t, base, req, "lease=120s")
	done := waitTerminal(t, base, leased.ID, 60*time.Second)
	if done.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	fetch := func(query string) ([]byte, string, string, string) {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + leased.ID + "/checkpoint" + query)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("checkpoint fetch %q: %s", query, resp.Status)
		}
		return blob, resp.Header.Get("X-Checkpoint-Format"),
			resp.Header.Get("X-Checkpoint-Body-Hash"), resp.Header.Get("X-Checkpoint-Cycle")
	}

	// Baseline: the full blob, its hash, and its clock.
	full, format, tipHex, cycle := fetch("")
	if format != "full" || tipHex == "" || cycle != "8000" {
		t.Fatalf("full fetch: format=%q hash=%q cycle=%q", format, tipHex, cycle)
	}
	if _, err := adaptnoc.RestoreSim(full); err != nil {
		t.Fatalf("full blob does not restore: %v", err)
	}

	// Mint a mid-chain base token by running the same config locally to a
	// slice boundary — byte-determinism makes the hashes coincide.
	simu, err := adaptnoc.NewSim(req.Canonical().Config)
	if err != nil {
		t.Fatal(err)
	}
	simu.Run(3000)
	local, err := simu.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	body, err := snap.OpenBody(local)
	if err != nil {
		t.Fatal(err)
	}
	localHash := snap.BodyHash(body)

	blob, format, gotTip, cycle := fetch("?base=" + hex.EncodeToString(localHash[:]))
	if format != "delta-chain" {
		t.Fatalf("mid-chain base answered format %q, want delta-chain", format)
	}
	if gotTip != tipHex || cycle != "8000" {
		t.Errorf("delta fetch: hash=%q cycle=%q, want %q/8000", gotTip, cycle, tipHex)
	}
	frames, err := snap.ParseFrameLog(blob)
	if err != nil {
		t.Fatalf("delta-chain body does not parse: %v", err)
	}
	if len(frames) != 5 {
		t.Errorf("suffix after cycle 3000 carries %d frames, want 5", len(frames))
	}
	// Under saturated traffic each frame still re-encodes the churning
	// packet state, so the honest size claim here is per-frame (the
	// steady-state >=5x shrink is benched by make bench-checkpoint); what
	// the negotiation always saves is shipping the suffix instead of one
	// full blob per poll.
	if len(blob) >= len(frames)*len(full) {
		t.Errorf("delta suffix (%d bytes over %d frames) not smaller than refetching full blobs (%d bytes each)",
			len(blob), len(frames), len(full))
	}
	applied, err := snap.ApplyChain(local, frames...)
	if err != nil {
		t.Fatalf("applying fetched chain: %v", err)
	}
	if !bytes.Equal(applied, full) {
		t.Error("local base + fetched deltas differs from the full blob")
	}

	// A caller already at the tip gets an empty chain.
	blob, format, _, _ = fetch("?base=" + tipHex)
	if format != "delta-chain" || len(blob) != 0 {
		t.Errorf("tip base: format=%q body=%d bytes, want delta-chain/empty", format, len(blob))
	}

	// An unknown or garbage base degrades to the full blob, never an error.
	blob, format, _, _ = fetch("?base=" + strings.Repeat("ab", 32))
	if format != "full" || !bytes.Equal(blob, full) {
		t.Errorf("unknown base: format=%q, want the full blob again", format)
	}
	blob, format, _, _ = fetch("?base=zzzz")
	if format != "full" || !bytes.Equal(blob, full) {
		t.Errorf("garbage base: format=%q, want the full blob again", format)
	}
}

// The checkpoint directory honors its byte budget: checkpoints beyond it
// are evicted least-recently-used at runtime, and a restart sweeps
// pre-existing files down to the budget.
func TestCheckpointDirBudget(t *testing.T) {
	dir := t.TempDir()
	req := slowRequest(42)

	// One canceled job to learn the checkpoint size and prove persistence.
	_, base := newTestServer(t, serve.Options{Workers: 1, CheckpointDir: dir})
	info, _ := submit(t, base, req)
	deadline := time.Now().Add(30 * time.Second)
	for len(getJob(t, base, info.ID).Results) == 0 && getJob(t, base, info.ID).State == serve.StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let it run a little before canceling
	cancelJob(t, base, info.ID)
	canceled := waitTerminal(t, base, info.ID, 30*time.Second)
	if canceled.State != serve.StateCanceled || !canceled.Checkpoint {
		t.Fatalf("setup job: state=%s checkpoint=%v", canceled.State, canceled.Checkpoint)
	}
	fi, err := os.Stat(filepath.Join(dir, info.Key+".ckpt"))
	if err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// Plant extra fake checkpoints, then restart with a budget that only
	// fits one: the startup sweep must evict the oldest down to the budget.
	old := filepath.Join(dir, strings.Repeat("0", 8)+".ckpt")
	os.WriteFile(old, make([]byte, fi.Size()), 0o644)
	past := time.Now().Add(-time.Hour)
	os.Chtimes(old, past, past)
	os.WriteFile(filepath.Join(dir, "stale.ckpt.tmp"), []byte("torn"), 0o644)

	newTestServer(t, serve.Options{Workers: 1, CheckpointDir: dir, CheckpointBytes: fi.Size() + 1})
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("startup sweep kept the oldest checkpoint past the budget")
	}
	if _, err := os.Stat(filepath.Join(dir, "stale.ckpt.tmp")); !os.IsNotExist(err) {
		t.Error("startup sweep kept a torn temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, info.Key+".ckpt")); err != nil {
		t.Errorf("startup sweep evicted the newest checkpoint: %v", err)
	}
}
