package exp

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// LatThroughputPoint is one (injection rate, latency) measurement.
type LatThroughputPoint struct {
	Rate      float64 // offered packets per node per cycle
	Latency   float64 // mean total packet latency, cycles
	Accepted  float64 // delivered packets per node per cycle
	Saturated bool    // latency exceeded the saturation threshold
}

// LatencyThroughput sweeps open-loop injection rate for one subNoC
// topology and returns the classic latency-throughput curve — the
// underlying trade-off the Adapt-NoC exploits (cmesh saturates early but
// has the lowest zero-load latency; torus/tree extend the saturation
// point). Not a paper figure, but the standard NoC characterization any
// user of the library will want.
func LatencyThroughput(kind topology.Kind, reg topology.Region, pat func(topology.Region) traffic.Pattern,
	rates []float64, cyclesPerPoint sim.Cycle, seed uint64) ([]LatThroughputPoint, error) {

	const satLatency = 500.0
	var out []LatThroughputPoint
	for i, rate := range rates {
		cfg := noc.DefaultConfig()
		cfg.VCsPerVNet = 2
		cfg.InjectionBypass = true
		net := noc.NewNetwork(cfg)
		switch kind {
		case topology.Mesh:
			topology.ConfigureMeshRegion(net, reg)
		case topology.CMesh:
			topology.ConfigureCMeshRegion(net, reg)
		case topology.Torus:
			topology.ConfigureTorusRegion(net, reg)
		case topology.Tree:
			topology.ConfigureTreeRegion(net, reg, noc.Coord{X: reg.X, Y: reg.Y}.ID(cfg.Width), nil)
		case topology.TorusTree:
			topology.ConfigureTorusTreeRegion(net, reg, noc.Coord{X: reg.X, Y: reg.Y}.ID(cfg.Width), nil)
		default:
			return nil, fmt.Errorf("exp: unsupported kind %v", kind)
		}

		k := sim.NewKernel()
		k.Register(net)
		var latSum, n float64
		net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) {
			latSum += float64(p.TotalLatency())
			n++
		})
		src := &traffic.OpenLoopSource{
			Net: net, Pat: pat(reg), Tiles: reg.Tiles(cfg.Width),
			Rate: rate, DataPct: 0.5, RNG: sim.NewRNG(seed + uint64(i)),
		}
		k.Register(src)
		k.Run(cyclesPerPoint)

		pt := LatThroughputPoint{Rate: rate}
		if n > 0 {
			pt.Latency = latSum / n
			pt.Accepted = n / float64(cyclesPerPoint) / float64(len(src.Tiles))
		}
		pt.Saturated = pt.Latency > satLatency || pt.Accepted < 0.8*rate
		out = append(out, pt)
	}
	return out, nil
}

// CharacterizeTopologies renders latency-throughput curves for all subNoC
// topologies under uniform traffic in a 4x4 region.
func CharacterizeTopologies(cyclesPerPoint sim.Cycle, seed uint64) (Table, error) {
	rates := []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.12}
	reg := topology.Region{W: 4, H: 4}
	uni := func(r topology.Region) traffic.Pattern {
		return traffic.NewUniform(r.X, r.Y, r.W, r.H)
	}
	t := Table{
		Title:   "Extra — latency-throughput characterization, uniform traffic, 4x4 subNoC",
		Columns: []string{"rate"},
		Notes: []string{
			"latency in cycles; * marks saturation",
			"cmesh: lowest zero-load latency, earliest saturation (shared injection mux);",
			"torus/tree: higher bisection, later saturation — the trade-off the RL policy rides",
		},
	}
	kinds := []topology.Kind{topology.Mesh, topology.CMesh, topology.Torus, topology.Tree, topology.TorusTree}
	curves := make([][]LatThroughputPoint, len(kinds))
	for ki, kind := range kinds {
		t.Columns = append(t.Columns, kind.String())
		pts, err := LatencyThroughput(kind, reg, uni, rates, cyclesPerPoint, seed)
		if err != nil {
			return t, err
		}
		curves[ki] = pts
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%.3f", rate)}
		for ki := range kinds {
			p := curves[ki][ri]
			cell := fmt.Sprintf("%.1f", p.Latency)
			if p.Saturated {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
