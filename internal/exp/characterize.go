package exp

import (
	"context"
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/runner"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// LatThroughputPoint is one (injection rate, latency) measurement.
type LatThroughputPoint struct {
	Rate      float64 // offered packets per node per cycle
	Latency   float64 // mean total packet latency, cycles
	Accepted  float64 // delivered packets per node per cycle
	Saturated bool    // latency exceeded the saturation threshold
}

// latThroughputPoint measures one (topology, rate) point on its own raw
// network and kernel. It is fully self-contained, so points fan out over
// the runner pool; seed must already include the per-point offset.
func latThroughputPoint(kind topology.Kind, reg topology.Region, pat func(topology.Region) traffic.Pattern,
	rate float64, cyclesPerPoint sim.Cycle, seed uint64) (LatThroughputPoint, error) {

	const satLatency = 500.0
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	cfg.InjectionBypass = true
	net := noc.NewNetwork(cfg)
	switch kind {
	case topology.Mesh:
		topology.ConfigureMeshRegion(net, reg)
	case topology.CMesh:
		topology.ConfigureCMeshRegion(net, reg)
	case topology.Torus:
		topology.ConfigureTorusRegion(net, reg)
	case topology.Tree:
		topology.ConfigureTreeRegion(net, reg, noc.Coord{X: reg.X, Y: reg.Y}.ID(cfg.Width), nil)
	case topology.TorusTree:
		topology.ConfigureTorusTreeRegion(net, reg, noc.Coord{X: reg.X, Y: reg.Y}.ID(cfg.Width), nil)
	default:
		return LatThroughputPoint{}, fmt.Errorf("exp: unsupported kind %v", kind)
	}

	k := sim.NewKernel()
	k.Register(net)
	var latSum, n float64
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) {
		latSum += float64(p.TotalLatency())
		n++
	})
	src := &traffic.OpenLoopSource{
		Net: net, Pat: pat(reg), Tiles: reg.Tiles(cfg.Width),
		Rate: rate, DataPct: 0.5, RNG: sim.NewRNG(seed),
	}
	k.Register(src)
	k.Run(cyclesPerPoint)

	pt := LatThroughputPoint{Rate: rate}
	if n > 0 {
		pt.Latency = latSum / n
		pt.Accepted = n / float64(cyclesPerPoint) / float64(len(src.Tiles))
	}
	pt.Saturated = pt.Latency > satLatency || pt.Accepted < 0.8*rate
	return pt, nil
}

// LatencyThroughput sweeps open-loop injection rate for one subNoC
// topology and returns the classic latency-throughput curve — the
// underlying trade-off the Adapt-NoC exploits (cmesh saturates early but
// has the lowest zero-load latency; torus/tree extend the saturation
// point). Not a paper figure, but the standard NoC characterization any
// user of the library will want. Points run parallelism-wide (<= 0 uses
// every CPU); each keeps its serial seed (seed + rate index), so the
// curve is identical at any setting.
func LatencyThroughput(kind topology.Kind, reg topology.Region, pat func(topology.Region) traffic.Pattern,
	rates []float64, cyclesPerPoint sim.Cycle, seed uint64, parallelism int) ([]LatThroughputPoint, error) {

	idx := make([]int, len(rates))
	for i := range idx {
		idx[i] = i
	}
	return runner.Map(context.Background(), parallelism, idx,
		func(_ context.Context, i int) (LatThroughputPoint, error) {
			return latThroughputPoint(kind, reg, pat, rates[i], cyclesPerPoint, seed+uint64(i))
		})
}

// CharacterizeTopologies renders latency-throughput curves for all subNoC
// topologies under uniform traffic in a 4x4 region. The kind×rate grid is
// flattened into one pool at the given parallelism.
func CharacterizeTopologies(cyclesPerPoint sim.Cycle, seed uint64, parallelism int) (Table, error) {
	rates := []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.12}
	reg := topology.Region{W: 4, H: 4}
	uni := func(r topology.Region) traffic.Pattern {
		return traffic.NewUniform(r.X, r.Y, r.W, r.H)
	}
	t := Table{
		Title:   "Extra — latency-throughput characterization, uniform traffic, 4x4 subNoC",
		Columns: []string{"rate"},
		Notes: []string{
			"latency in cycles; * marks saturation",
			"cmesh: lowest zero-load latency, earliest saturation (shared injection mux);",
			"torus/tree: higher bisection, later saturation — the trade-off the RL policy rides",
		},
	}
	kinds := []topology.Kind{topology.Mesh, topology.CMesh, topology.Torus, topology.Tree, topology.TorusTree}
	for _, kind := range kinds {
		t.Columns = append(t.Columns, kind.String())
	}
	type cell struct{ kind, rate int }
	var jobs []cell
	for ki := range kinds {
		for ri := range rates {
			jobs = append(jobs, cell{ki, ri})
		}
	}
	pts, err := runner.Map(context.Background(), parallelism, jobs,
		func(_ context.Context, j cell) (LatThroughputPoint, error) {
			// seed + rate index matches the serial LatencyThroughput sweep.
			return latThroughputPoint(kinds[j.kind], reg, uni, rates[j.rate], cyclesPerPoint, seed+uint64(j.rate))
		})
	if err != nil {
		return t, err
	}
	curves := make([][]LatThroughputPoint, len(kinds))
	for ki := range kinds {
		curves[ki] = pts[ki*len(rates) : (ki+1)*len(rates)]
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%.3f", rate)}
		for ki := range kinds {
			p := curves[ki][ri]
			cell := fmt.Sprintf("%.1f", p.Latency)
			if p.Saturated {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
