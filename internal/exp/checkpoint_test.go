package exp

import (
	"context"
	"os"
	"reflect"
	"testing"

	"adaptnoc"
)

// TestRunDesignCheckpointResumeIdentical pins the experiment driver's
// checkpointing contract: results are identical with checkpointing off,
// with periodic checkpoints, when fast-forwarding from a kept final
// checkpoint, and when resuming from a mid-run checkpoint.
func TestRunDesignCheckpointResumeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	o.Cycles = 30000
	apps := adaptnoc.DefaultMixed(0)
	ctx := context.Background()

	plain, err := o.runDesign(ctx, adaptnoc.DesignAdaptNoC, apps)
	if err != nil {
		t.Fatal(err)
	}

	ck := o
	ck.CheckpointDir = t.TempDir()
	ck.CheckpointEvery = 7000 // not a divisor of Cycles: exercises the tail slice
	got, err := ck.runDesign(ctx, adaptnoc.DesignAdaptNoC, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("checkpointed run differs:\nplain: %+v\n ckpt: %+v", plain, got)
	}
	path, err := ck.checkpointFile(ck.buildConfig(adaptnoc.DesignAdaptNoC, apps))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("final checkpoint not kept: %v", err)
	}

	// Resume from the kept final checkpoint: no cycles left to run, the
	// results come straight off the restored state.
	res := ck
	res.Resume = true
	got, err = res.runDesign(ctx, adaptnoc.DesignAdaptNoC, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("fast-forwarded run differs:\nplain: %+v\nresume: %+v", plain, got)
	}

	// Resume from a mid-run checkpoint, as an interrupted suite would.
	s, err := adaptnoc.NewSim(ck.buildConfig(adaptnoc.DesignAdaptNoC, apps))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(11000)
	if err := s.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	got, err = res.runDesign(ctx, adaptnoc.DesignAdaptNoC, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("mid-run resume differs:\nplain: %+v\nresume: %+v", plain, got)
	}
}

// TestRunDesignCheckpointBudgeted covers the run-to-completion path:
// budgeted runs checkpoint and resume with identical results too.
func TestRunDesignCheckpointBudgeted(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	apps := []adaptnoc.AppSpec{
		{Profile: "bfs", Region: adaptnoc.Region{X: 0, Y: 0, W: 4, H: 4}, InstrBudget: o.Budget},
		{Profile: "canneal", Region: adaptnoc.Region{X: 4, Y: 0, W: 4, H: 4}, InstrBudget: o.Budget},
	}
	ctx := context.Background()

	plain, err := o.runDesign(ctx, adaptnoc.DesignBaseline, apps)
	if err != nil {
		t.Fatal(err)
	}

	ck := o
	ck.CheckpointDir = t.TempDir()
	ck.CheckpointEvery = 5000
	got, err := ck.runDesign(ctx, adaptnoc.DesignBaseline, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("checkpointed budgeted run differs:\nplain: %+v\n ckpt: %+v", plain, got)
	}

	res := ck
	res.Resume = true
	got, err = res.runDesign(ctx, adaptnoc.DesignBaseline, apps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Fatalf("resumed budgeted run differs:\nplain: %+v\nresume: %+v", plain, got)
	}
}
