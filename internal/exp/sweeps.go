package exp

import (
	"context"
	"fmt"

	"adaptnoc"
	"adaptnoc/internal/train"
)

// gpuSweepApps are the representative GPU applications used by the
// sensitivity studies (Section V-C).
func gpuSweepApps(quick bool) []string {
	if quick {
		return []string{"bfs"}
	}
	return []string{"kmeans", "bfs", "backprop"}
}

// runRLvsNoRL runs one GPU app in a region under Adapt-NoC and
// Adapt-NoC-noRL and returns (latency, energy) for each. It is used as a
// pool job body by Fig16, so it runs its own simulations serially.
func (o Options) runRLvsNoRL(ctx context.Context, app string, reg adaptnoc.Region) (rlLat, rlEnergy, noLat, noEnergy float64, err error) {
	spec := adaptnoc.AppSpec{Profile: app, Region: reg, MCTiles: adaptnoc.BlockMCs(reg), Static: adaptnoc.CMesh}
	specs := []adaptnoc.AppSpec{spec}
	oracle, err := o.oracleStatics(specs)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	no, err := o.runDesign(ctx, adaptnoc.DesignAdaptNoRL, oracle)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	withRL, err := o.runDesign(ctx, adaptnoc.DesignAdaptNoC, specs)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return withRL.MeanLatency(), withRL.Apps[0].Energy.TotalPJ(),
		no.MeanLatency(), no.Apps[0].Energy.TotalPJ(), nil
}

// Fig16 sweeps the subNoC size (2x4, 4x4, 4x8, 8x8) and reports the RL
// policy's latency and energy reductions over the static-best baseline.
func Fig16(o Options, quick bool) (Table, error) {
	sizes := []adaptnoc.Region{
		{X: 0, Y: 0, W: 2, H: 4},
		{X: 0, Y: 0, W: 4, H: 4},
		{X: 0, Y: 0, W: 4, H: 8},
		{X: 0, Y: 0, W: 8, H: 8},
	}
	t := Table{
		Title:   "Fig. 16 — RL vs static-best across subNoC sizes (GPU applications)",
		Columns: []string{"subNoC", "latency reduction", "energy reduction"},
		Notes:   []string{"paper: latency −5/−12/−17/−24% and energy −28..−35% for 2x4/4x4/4x8/8x8"},
	}
	// Each (size, app) combo — oracle probes plus the RL/no-RL pair — is
	// one pool job; the per-size averaging below walks them in order.
	apps := gpuSweepApps(quick)
	type combo struct {
		reg adaptnoc.Region
		app string
	}
	var jobs []combo
	for _, reg := range sizes {
		for _, app := range apps {
			jobs = append(jobs, combo{reg, app})
		}
	}
	type reduction struct{ lat, energy float64 }
	reds, err := mapJobs(o, jobs, func(ctx context.Context, j combo) (reduction, error) {
		oo := o
		oo.Parallelism = 1 // the combos already saturate the pool
		rlLat, rlE, noLat, noE, err := oo.runRLvsNoRL(ctx, j.app, j.reg)
		if err != nil {
			return reduction{}, err
		}
		var r reduction
		if noLat > 0 {
			r.lat = 1 - rlLat/noLat
		}
		if noE > 0 {
			r.energy = 1 - rlE/noE
		}
		return r, nil
	})
	if err != nil {
		return t, err
	}
	n := float64(len(apps))
	for si, reg := range sizes {
		var latRed, enRed float64
		for ai := range apps {
			r := reds[si*len(apps)+ai]
			latRed += r.lat
			enRed += r.energy
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", reg.W, reg.H), pct(latRed / n), pct(enRed / n),
		})
	}
	return t, nil
}

// Fig17 sweeps the epoch size (10K-100K cycles), normalized to 50K.
func Fig17(o Options) (Table, error) {
	epochs := []int{10000, 25000, 50000, 75000, 100000}
	reg := adaptnoc.Region{W: 4, H: 8}
	spec := adaptnoc.AppSpec{Profile: "bfs", Region: reg, MCTiles: adaptnoc.BlockMCs(reg)}
	lat := make([]float64, len(epochs))
	pwr := make([]float64, len(epochs))
	refIdx := 2
	results, err := mapJobs(o, epochs, func(ctx context.Context, e int) (adaptnoc.Results, error) {
		oo := o
		oo.EpochCycles = e
		if oo.Cycles < adaptnoc.Cycle(4*e) {
			oo.Cycles = adaptnoc.Cycle(4 * e) // at least a few epochs
		}
		return oo.runDesign(ctx, adaptnoc.DesignAdaptNoC, []adaptnoc.AppSpec{spec})
	})
	if err != nil {
		return Table{}, err
	}
	for i, res := range results {
		lat[i] = res.MeanLatency()
		pwr[i] = res.Apps[0].Energy.TotalPJ() / float64(res.Cycles)
	}
	t := Table{
		Title:   "Fig. 17 — epoch-size sweep (normalized to 50K)",
		Columns: []string{"epoch", "latency", "power"},
		Notes:   []string{"paper: 10K is ~17%/15% worse; 50K-100K flat; 50K best overall"},
	}
	for i, e := range epochs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", e/1000), f3(lat[i] / lat[refIdx]), f3(pwr[i] / pwr[refIdx]),
		})
	}
	return t, nil
}

// Fig18 sweeps the discount factor, normalized to 0.9. As in the paper,
// each gamma gets its own offline training run; the sweep then deploys
// each trained policy on the GPU reference workload.
func Fig18(o Options) (Table, error) {
	gammas := []float64{0.5, 0.7, 0.9, 0.99}
	tro := train.DefaultOptions()
	tro.Rounds = 2
	tro.EpisodeCycles = 120000
	if o.Cycles < 100000 { // quick mode
		tro.Rounds = 1
		tro.EpisodeCycles = 60000
		tro.SweepIterations = 100
	}
	return hyperSweep(o,
		"Fig. 18 — discount factor sweep, per-gamma offline training (normalized to gamma=0.9)",
		"paper: 0.9 best; small gamma ignores future, large gamma ignores present",
		gammas, 2,
		func(cfg *adaptnoc.Config, g float64) error {
			to := tro
			to.Gamma = g
			to.Seed = o.Seed + uint64(1000*g)
			agent, err := train.Train(to)
			if err != nil {
				return err
			}
			cfg.RL.Pretrained = agent.Prediction
			cfg.RL.Gamma = g
			return nil
		},
		func(g float64) string { return fmt.Sprintf("%.2f", g) },
	)
}

// Fig19 sweeps the deployment exploration rate, normalized to 0.05: the
// pretrained policy runs with different epsilon-greedy rates (the paper's
// exploration/exploitation trade-off at runtime).
func Fig19(o Options) (Table, error) {
	eps := []float64{0, 0.05, 0.1, 0.3, 0.5}
	return hyperSweep(o,
		"Fig. 19 — exploration rate sweep (normalized to epsilon=0.05)",
		"paper: 0.05 best trade-off between exploration and exploitation",
		eps, 1,
		func(cfg *adaptnoc.Config, e float64) error {
			cfg.RL.Epsilon = e
			cfg.RL.EpsilonSet = true
			return nil
		},
		func(e float64) string { return fmt.Sprintf("%.3g", e) },
	)
}

// hyperSweep runs the GPU reference app once per parameter value, each
// value (including Fig18's per-gamma offline training) as one pool job.
func hyperSweep(o Options, title, note string, vals []float64, refIdx int,
	apply func(*adaptnoc.Config, float64) error, label func(float64) string) (Table, error) {
	spec := adaptnoc.AppSpec{Profile: "bfs", Region: adaptnoc.Region{W: 4, H: 8},
		MCTiles: adaptnoc.BlockMCs(adaptnoc.Region{W: 4, H: 8})}
	lat := make([]float64, len(vals))
	pwr := make([]float64, len(vals))
	results, err := mapJobs(o, vals, func(ctx context.Context, v float64) (adaptnoc.Results, error) {
		cfg := o.buildConfig(adaptnoc.DesignAdaptNoC, []adaptnoc.AppSpec{spec})
		if err := apply(&cfg, v); err != nil {
			return adaptnoc.Results{}, err
		}
		return o.evalConfig(ctx, cfg, o.Cycles, 0)
	})
	if err != nil {
		return Table{}, err
	}
	for i, res := range results {
		lat[i] = res.MeanLatency()
		pwr[i] = res.Apps[0].Energy.TotalPJ() / float64(res.Cycles)
	}
	t := Table{
		Title:   title,
		Columns: []string{"value", "latency", "power"},
		Notes:   []string{note},
	}
	for i, v := range vals {
		t.Rows = append(t.Rows, []string{label(v), f3(lat[i] / lat[refIdx]), f3(pwr[i] / pwr[refIdx])})
	}
	return t, nil
}
