package exp

import (
	"fmt"

	"adaptnoc/internal/overhead"
	"adaptnoc/internal/rl"
)

// TabArea renders the Section V-B.1 area-overhead analysis.
func TabArea() Table {
	r := overhead.AdaptNoCArea()
	t := Table{
		Title:   "Sec. V-B.1 — area overhead (45 nm)",
		Columns: []string{"component", "area"},
	}
	t.Rows = append(t.Rows,
		[]string{"baseline router crossbar", fmt.Sprintf("%.0f um^2", overhead.CrossbarAreaUM2)},
		[]string{"baseline router switch allocator", fmt.Sprintf("%.0f um^2", overhead.SwitchAllocAreaUM2)},
		[]string{"baseline router VC allocator", fmt.Sprintf("%.0f um^2", overhead.VCAllocAreaUM2)},
		[]string{"baseline router buffers", fmt.Sprintf("%.0f um^2", overhead.BuffersAreaUM2)},
		[]string{"baseline 8x8 NoC", fmt.Sprintf("%.2f mm^2", r.BaselineNoCMM2)},
		[]string{"adapt-noc extra ports", fmt.Sprintf("%.2f mm^2", overhead.AdaptExtraPortsMM2)},
		[]string{"RL controllers (8 total)", fmt.Sprintf("%.0f um^2", overhead.RLControllersAreaUM2)},
		[]string{"arbiter + muxes + links", fmt.Sprintf("%.0f um^2", overhead.MuxArbLinkAreaUM2)},
		[]string{"adapt-noc total (2 VCs/vnet)", fmt.Sprintf("%.2f mm^2", r.AdaptNoCMM2)},
		[]string{"saving vs baseline", pct(r.SavingVsBaseline)},
	)
	t.Notes = append(t.Notes, "paper: adapt-noc is ~14% smaller after trading one VC per vnet for the fabric")
	return t
}

// TabWiring renders the Section V-B.2 wiring-density check.
func TabWiring() Table {
	r := overhead.CheckWiringBudget()
	t := Table{
		Title:   "Sec. V-B.2 — wiring density vs Intel 45 nm metal stack",
		Columns: []string{"layer", "256-bit bidir links per 1 mm tile edge"},
	}
	t.Rows = append(t.Rows,
		[]string{"high metal (M7-M8)", fmt.Sprintf("%d", r.HighMetalLinks)},
		[]string{"intermediate (M4-M6)", fmt.Sprintf("%d", r.IntermediateMetalLinks)},
		[]string{"adapt-noc worst-case need", fmt.Sprintf("%d", r.RequiredLinks)},
		[]string{"within budget", fmt.Sprintf("%v", r.WithinBudget)},
	)
	t.Notes = append(t.Notes, "paper: 2 high-metal + 7 intermediate links per edge; need 4")
	return t
}

// TabTiming renders the Section V-B.3 router/link/RL timing analysis.
func TabTiming() Table {
	rt := overhead.RouterTiming()
	t := Table{
		Title:   "Sec. V-B.3 — timing analysis (45 nm)",
		Columns: []string{"path", "delay"},
	}
	t.Rows = append(t.Rows,
		[]string{"RC", fmt.Sprintf("%.0f ps", overhead.RCDelayPS)},
		[]string{"VA (critical)", fmt.Sprintf("%.0f ps", overhead.VADelayPS)},
		[]string{"SA", fmt.Sprintf("%.0f ps", overhead.SADelayPS)},
		[]string{"ST", fmt.Sprintf("%.0f ps", overhead.STDelayPS)},
		[]string{"mux", fmt.Sprintf("%.0f ps", overhead.MuxDelayPS)},
		[]string{"RC+mux (merged)", fmt.Sprintf("%.0f ps", rt.MergedRCPS)},
		[]string{"ST+mux (merged)", fmt.Sprintf("%.0f ps", rt.MergedSTPS)},
		[]string{"mux merge safe", fmt.Sprintf("%v", rt.MuxMergeSafe)},
		[]string{"max clock", fmt.Sprintf("%.2f GHz", rt.MaxClockGHz)},
		[]string{"high-metal wire delay", fmt.Sprintf("%.0f ps/mm", overhead.HighMetal.DelayPSPerMM)},
		[]string{"intermediate wire delay", fmt.Sprintf("%.0f ps/mm", overhead.IntermediateMetal.DelayPSPerMM)},
		[]string{"reversed repeater extra", fmt.Sprintf("%.0f ps", overhead.ReversedRepeaterExtraPS)},
		[]string{"DQN inference (12-15-15-4)", fmt.Sprintf("%.0f ns", overhead.RLInferenceNS([]int{rl.StateSize, 15, 15, rl.NumActions}))},
	)
	t.Notes = append(t.Notes, "paper: merged RC/ST (266/358 ps) under VA (370 ps); DQN 486 ns, hidden by the 50K epoch")
	return t
}
