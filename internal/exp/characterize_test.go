package exp

import (
	"os"
	"testing"

	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

func TestCharacterizeTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := CharacterizeTopologies(20000, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab.Print(os.Stderr)
	if len(tab.Rows) != 6 || len(tab.Columns) != 6 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestLatencyThroughputMonotoneAtLowLoad(t *testing.T) {
	reg := topology.Region{W: 4, H: 4}
	uni := func(r topology.Region) traffic.Pattern {
		return traffic.NewUniform(r.X, r.Y, r.W, r.H)
	}
	pts, err := LatencyThroughput(topology.Mesh, reg, uni,
		[]float64{0.005, 0.02, 0.6}, 20000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Latency <= 0 {
		t.Fatal("no latency at low load")
	}
	if pts[0].Saturated {
		t.Fatal("saturated at 0.005 pkts/node/cycle")
	}
	if !pts[2].Saturated {
		t.Fatalf("not saturated at 0.6 pkts/node/cycle: %+v", pts[2])
	}
	if pts[2].Latency <= pts[0].Latency {
		t.Fatal("latency not increasing with load")
	}
}

func TestCMeshSaturatesBeforeMesh(t *testing.T) {
	reg := topology.Region{W: 4, H: 4}
	uni := func(r topology.Region) traffic.Pattern {
		return traffic.NewUniform(r.X, r.Y, r.W, r.H)
	}
	rates := []float64{0.12}
	mesh, err := LatencyThroughput(topology.Mesh, reg, uni, rates, 20000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cmesh, err := LatencyThroughput(topology.CMesh, reg, uni, rates, 20000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The concentration mux quarters per-node injection bandwidth: at a
	// rate the mesh still absorbs, cmesh must already be saturated.
	if mesh[0].Saturated {
		t.Fatalf("mesh unexpectedly saturated: %+v", mesh[0])
	}
	if !cmesh[0].Saturated {
		t.Fatalf("cmesh not saturated at 0.12: %+v", cmesh[0])
	}
}
