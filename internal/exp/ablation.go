package exp

import (
	"context"
	"fmt"

	"adaptnoc"
)

// Ablations quantifies the design choices DESIGN.md calls out by removing
// or perturbing one at a time on the memory-intensive GPU reference
// workload and reporting latency/energy relative to the full design:
//
//   - no injection bypass (Section II-A.1's bypass at the NI's VCs)
//   - tabular Q-learning instead of the DQN (Section III-A's motivation)
//   - 3 VCs/vnet (giving back the buffers the paper trades for the fabric)
//   - 10x the Ts connection-setup time (reconfiguration cost sensitivity)
//
// Not a paper figure; it substantiates the paper's individual claims.
func Ablations(o Options) (Table, error) {
	reg := adaptnoc.Region{W: 4, H: 8}
	spec := adaptnoc.AppSpec{Profile: "bfs", Region: reg, MCTiles: adaptnoc.BlockMCs(reg)}

	type variant struct {
		name  string
		apply func(*adaptnoc.Config)
	}
	variants := []variant{
		{"full design", func(*adaptnoc.Config) {}},
		{"no injection bypass", func(c *adaptnoc.Config) { c.NoInjectionBypass = true }},
		{"q-table policy", func(c *adaptnoc.Config) { c.UseQTable = true }},
		{"3 VCs/vnet", func(c *adaptnoc.Config) { c.VCsPerVNet = 3 }},
		{"Ts x10 (140 cycles)", func(c *adaptnoc.Config) { c.SetupCycles = 140 }},
	}

	t := Table{
		Title:   "Extra — ablation of Adapt-NoC design choices (bfs, 4x8 subNoC; relative to full design)",
		Columns: []string{"variant", "latency", "energy"},
		Notes: []string{
			"latency = mean packet latency ratio, energy = subNoC energy ratio",
		},
	}
	type metrics struct{ lat, energy float64 }
	ms, err := mapJobs(o, variants, func(ctx context.Context, v variant) (metrics, error) {
		cfg := o.buildConfig(adaptnoc.DesignAdaptNoC, []adaptnoc.AppSpec{spec})
		v.apply(&cfg)
		res, err := o.evalConfig(ctx, cfg, o.Cycles, 0)
		if err != nil {
			return metrics{}, fmt.Errorf("exp: ablation %q: %w", v.name, err)
		}
		return metrics{lat: res.MeanLatency(), energy: res.Apps[0].Energy.TotalPJ()}, nil
	})
	if err != nil {
		return t, err
	}
	base := ms[0] // variants[0] is the full design
	for i, v := range variants {
		t.Rows = append(t.Rows, []string{v.name, f3(ms[i].lat / base.lat), f3(ms[i].energy / base.energy)})
	}
	return t, nil
}
