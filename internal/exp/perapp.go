package exp

import (
	"context"

	"adaptnoc"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// perAppSpec places one application alone on the chip.
func perAppSpec(name string, class traffic.Class) adaptnoc.AppSpec {
	reg := adaptnoc.Region{X: 0, Y: 0, W: 4, H: 4} // CPU apps: 4x4 (Fig. 14)
	static := topology.CMesh                       // sparse CPU default
	if class == traffic.GPU {
		reg = adaptnoc.Region{X: 0, Y: 0, W: 4, H: 8} // GPU apps: 4x8 (Fig. 15)
		static = topology.Tree                        // memory-reply default
	}
	return adaptnoc.AppSpec{
		Profile: name,
		Region:  reg,
		MCTiles: adaptnoc.BlockMCs(reg),
		Static:  static,
	}
}

// PerAppMetrics holds one application's metrics across designs.
type PerAppMetrics struct {
	App      string
	Hops     []float64 // per design, paper order
	QueueLat []float64
	NetLat   []float64
}

// RunPerApp measures each named application alone under every design. The
// oracle probes every application in one combined pass (each probe is an
// isolated single-app simulation, so batching them changes nothing), then
// the name×design grid fans out over the runner pool.
func RunPerApp(o Options, names []string, class traffic.Class) ([]PerAppMetrics, error) {
	specs := make([]adaptnoc.AppSpec, len(names))
	for i, name := range names {
		specs[i] = perAppSpec(name, class)
	}
	oracle, err := o.oracleStatics(specs)
	if err != nil {
		return nil, err
	}
	type job struct{ name, design int }
	var jobs []job
	for ni := range names {
		for di := range AllDesigns {
			jobs = append(jobs, job{ni, di})
		}
	}
	results, err := mapJobs(o, jobs, func(ctx context.Context, j job) (adaptnoc.Results, error) {
		spec := specs[j.name]
		if AllDesigns[j.design] == adaptnoc.DesignAdaptNoRL {
			spec = oracle[j.name]
		}
		return o.runDesign(ctx, AllDesigns[j.design], []adaptnoc.AppSpec{spec})
	})
	if err != nil {
		return nil, err
	}
	var out []PerAppMetrics
	for ni, name := range names {
		pm := PerAppMetrics{App: name}
		for di := range AllDesigns {
			a := results[ni*len(AllDesigns)+di].Apps[0]
			pm.Hops = append(pm.Hops, a.AvgHops)
			pm.QueueLat = append(pm.QueueLat, a.AvgQueueLatency)
			pm.NetLat = append(pm.NetLat, a.AvgNetLatency)
		}
		out = append(out, pm)
	}
	return out, nil
}

// Fig8 renders the per-CPU-application hop counts, normalized to baseline.
func Fig8(o Options) (Table, error) {
	var names []string
	for _, p := range traffic.CPUProfiles() {
		names = append(names, p.Name)
	}
	ms, err := RunPerApp(o, names, traffic.CPU)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Fig. 8 — hop count, CPU applications (normalized to baseline)",
		Columns: append([]string{"app"}, designCols()...),
	}
	for _, m := range ms {
		row := []string{m.App}
		for i := range AllDesigns {
			row = append(row, f3(m.Hops[i]/m.Hops[0]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: adapt-noc ~41% below baseline/oscar, ~31% below shortcut, ~9% above ftby")
	return t, nil
}

// Fig9 renders GPU hop count and queuing latency, normalized to baseline.
func Fig9(o Options) (Table, error) {
	var names []string
	for _, p := range traffic.GPUProfiles() {
		names = append(names, p.Name)
	}
	ms, err := RunPerApp(o, names, traffic.GPU)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Fig. 9 — hop count / queuing latency, GPU applications (normalized to baseline)",
		Columns: []string{"app", "metric"},
	}
	t.Columns = append(t.Columns, designCols()...)
	for _, m := range ms {
		hops := []string{m.App, "hops"}
		queue := []string{m.App, "queue"}
		for i := range AllDesigns {
			hops = append(hops, f3(m.Hops[i]/m.Hops[0]))
			qBase := m.QueueLat[0]
			if qBase == 0 {
				qBase = 1
			}
			queue = append(queue, f3(m.QueueLat[i]/qBase))
		}
		t.Rows = append(t.Rows, hops, queue)
	}
	t.Notes = append(t.Notes,
		"paper: adapt-noc hops ~46% below baseline, ~10% above ftby; queuing ~39% below baseline")
	return t, nil
}

// SelectionResult is one application's topology-selection breakdown.
type SelectionResult struct {
	App       string
	Fractions [int(topology.NumSelectable)]float64
}

// RunSelection runs DesignAdaptNoC per application and collects the
// per-epoch topology choices (Figs. 14-15), one pooled run per name.
func RunSelection(o Options, names []string, class traffic.Class) ([]SelectionResult, error) {
	results, err := mapJobs(o, names, func(ctx context.Context, name string) (adaptnoc.Results, error) {
		return o.runDesign(ctx, adaptnoc.DesignAdaptNoC, []adaptnoc.AppSpec{perAppSpec(name, class)})
	})
	if err != nil {
		return nil, err
	}
	var out []SelectionResult
	for ni, name := range names {
		out = append(out, SelectionResult{App: name, Fractions: results[ni].Apps[0].Selections})
	}
	return out, nil
}

// Fig14 renders the CPU selection breakdown (4x4 subNoC).
func Fig14(o Options) (Table, error) {
	var names []string
	for _, p := range traffic.CPUProfiles() {
		names = append(names, p.Name)
	}
	sel, err := RunSelection(o, names, traffic.CPU)
	if err != nil {
		return Table{}, err
	}
	return selectionTable("Fig. 14 — topology selection breakdown, CPU applications (4x4 subNoC)",
		sel, "paper: cmesh ~85% overall; CA/SW/X264 pick ~8% tree"), nil
}

// Fig15 renders the GPU selection breakdown (4x8 subNoC).
func Fig15(o Options) (Table, error) {
	var names []string
	for _, p := range traffic.GPUProfiles() {
		names = append(names, p.Name)
	}
	sel, err := RunSelection(o, names, traffic.GPU)
	if err != nil {
		return Table{}, err
	}
	return selectionTable("Fig. 15 — topology selection breakdown, GPU applications (4x8 subNoC)",
		sel, "paper: bandwidth-rich topologies (mesh/torus/tree) >49%; cmesh 37-64%"), nil
}

func selectionTable(title string, sel []SelectionResult, note string) Table {
	t := Table{
		Title:   title,
		Columns: []string{"app", "mesh", "cmesh", "torus", "tree"},
		Notes:   []string{note},
	}
	var avg [int(topology.NumKinds)]float64
	for _, s := range sel {
		row := []string{s.App}
		for k := 0; k < int(topology.NumKinds); k++ {
			row = append(row, pct(s.Fractions[k]))
			avg[k] += s.Fractions[k]
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"(mean)"}
	for k := 0; k < int(topology.NumKinds); k++ {
		mean = append(mean, pct(avg[k]/float64(len(sel))))
	}
	t.Rows = append(t.Rows, mean)
	return t
}

func designCols() []string {
	var out []string
	for _, d := range AllDesigns {
		out = append(out, d.String())
	}
	return out
}
