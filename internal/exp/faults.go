package exp

import (
	"context"
	"fmt"

	"adaptnoc"
	"adaptnoc/internal/fault"
)

// RunFaults sweeps the fault count over the mixed workload for every
// design and reports mean packet latency and survival rate (delivered /
// enqueued) per design at each count. All designs face the identical
// generated schedule at a given count — the same links, routers, and VCs
// die at the same cycles — so the columns compare fault *response*, not
// fault luck: Adapt designs re-allocate adaptable links around the dead
// regions while the static designs can only prune and drop.
//
// Each (design, count) pair is one pool job; rows are assembled in the
// serial loop's order, so the table is byte-identical at any Parallelism
// or Shards setting.
func RunFaults(o Options, counts []int) (Table, error) {
	apps := adaptnoc.DefaultMixed(0)
	// The generation horizon is the measurement window: strikes land in
	// [Cycles/10, Cycles/2], leaving the back half of the run to show the
	// damage in the latency and survival numbers.
	schedules := make(map[int][]fault.Event, len(counts))
	for _, n := range counts {
		if n > 0 {
			schedules[n] = fault.Generate(n, o.Seed, 8, 8, int64(o.Cycles))
		}
	}

	type job struct {
		design adaptnoc.Design
		count  int
	}
	var jobs []job
	for _, n := range counts {
		for _, d := range AllDesigns {
			jobs = append(jobs, job{d, n})
		}
	}
	results, err := mapJobs(o, jobs, func(ctx context.Context, j job) (adaptnoc.Results, error) {
		cfg := o.buildConfig(j.design, apps)
		cfg.Faults = schedules[j.count]
		res, err := o.evalConfig(ctx, cfg, o.Cycles, 0)
		if err != nil {
			return adaptnoc.Results{}, fmt.Errorf("exp: %v faults=%d: %w", j.design, j.count, err)
		}
		return res, nil
	})
	if err != nil {
		return Table{}, err
	}

	t := Table{
		Title:   "Fault tolerance — latency and survival rate vs fault count (mixed workload)",
		Columns: []string{"faults"},
		Notes: []string{
			"identical generated fault schedule per count across all designs (same seed)",
			"survival = delivered / (delivered + dropped); static designs drop what the pruned tables cannot route",
		},
	}
	for _, d := range AllDesigns {
		t.Columns = append(t.Columns, d.String()+" lat", d.String()+" surv")
	}
	for ci, n := range counts {
		row := []string{fmt.Sprintf("%d", n)}
		for di := range AllDesigns {
			res := results[ci*len(AllDesigns)+di]
			row = append(row, f2(res.MeanLatency()), f3(res.SurvivalRate()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
