package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// faultGoldenCounts keep the sweep small: a fault-free reference row plus
// two escalating campaigns.
var faultGoldenCounts = []int{0, 2, 4}

func runFaultTable(t *testing.T, o Options) []byte {
	t.Helper()
	tab, err := RunFaults(o, faultGoldenCounts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	return buf.Bytes()
}

// TestGoldenFaultTable locks the fault-sweep table to
// testdata/golden_faults.txt and proves the table is byte-identical
// across -parallel and -shards settings (execution knobs must never leak
// into fault outcomes). Refresh intentionally with:
//
//	go test ./internal/exp -run TestGoldenFaultTable -update
func TestGoldenFaultTable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden fault run is a 21-simulation sweep")
	}
	got := runFaultTable(t, goldenOptions())

	o2 := goldenOptions()
	o2.Parallelism = 1
	o2.Shards = 2
	if again := runFaultTable(t, o2); !bytes.Equal(got, again) {
		t.Fatalf("fault table differs across parallelism/shard settings.\n--- default ---\n%s\n--- serial pool, 2 shards ---\n%s", got, again)
	}

	path := filepath.Join("testdata", "golden_faults.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fault table drifted from %s.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, refresh with -update.",
			path, got, want)
	}
}
