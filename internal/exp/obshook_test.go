package exp

import (
	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
)

// Every network the experiment drivers build during tests runs the obs
// invariant checker. The interval is coarser than the noc package's (these
// tests simulate hundreds of thousands of cycles across many designs), but
// a conservation or credit-balance break still fails the suite loudly.
func init() {
	noc.InstallTestVerifier(2048, obs.Verify)
}
