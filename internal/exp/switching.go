package exp

import (
	"context"
	"fmt"

	"adaptnoc"
	"adaptnoc/internal/runner"
)

// gatedPerSwitch measures the mean gated-injection window per mesh↔cmesh
// switch in one region, idle (blackscholes) or under live canneal traffic.
func gatedPerSwitch(reg adaptnoc.Region, loaded bool) (float64, error) {
	spec := adaptnoc.AppSpec{
		Profile: "canneal", Region: reg,
		MCTiles: adaptnoc.BlockMCs(reg), Static: adaptnoc.Mesh,
	}
	if !loaded {
		spec.Profile = "blackscholes" // near-idle traffic
	}
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design:      adaptnoc.DesignAdaptNoRL,
		Apps:        []adaptnoc.AppSpec{spec},
		Seed:        31,
		EpochCycles: 1 << 30, // manual control only
	})
	if err != nil {
		return 0, err
	}
	s.Run(2000)
	const switches = 8
	kinds := []adaptnoc.Kind{adaptnoc.CMesh, adaptnoc.Mesh}
	for i := 0; i < switches; i++ {
		done := false
		if err := s.Reconfigure(0, kinds[i%2], func() { done = true }); err != nil {
			return 0, err
		}
		for !done {
			s.Run(16)
		}
		s.Run(400)
	}
	sn := s.Fabric.SubNoCs()[0]
	return float64(sn.ReconfigCycles) / float64(sn.Reconfigs), nil
}

// TabSwitching validates the Section II-C.1 walk-through example: a
// reconfiguration costs the notification wave (M+N−2)(Tr+Tl), then a
// gated-injection window covering the in-flight drain plus the Ts=14-cycle
// connection setup. The wave is analytic; the gated window is measured on
// real mesh↔cmesh switches, idle and under live traffic. The region×load
// measurements run parallelism-wide (<= 0 uses every CPU).
func TabSwitching(parallelism int) (Table, error) {
	t := Table{
		Title:   "Sec. II-C.1 — reconfiguration cost: notification wave + measured gated window",
		Columns: []string{"subNoC", "wave (M+N-2)(Tr+Tl)", "Ts", "gated idle", "gated loaded"},
		Notes: []string{
			"gated = cycles the subNoC's NIs hold new injections (drain + Ts), per switch",
			"loaded = canneal traffic running through the switches",
		},
	}
	regions := []adaptnoc.Region{
		{W: 2, H: 4}, {W: 4, H: 4}, {W: 4, H: 8}, {W: 8, H: 8},
	}
	type job struct {
		reg    adaptnoc.Region
		loaded bool
	}
	var jobs []job
	for _, reg := range regions {
		jobs = append(jobs, job{reg, false}, job{reg, true})
	}
	gated, err := runner.Map(context.Background(), parallelism, jobs,
		func(_ context.Context, j job) (float64, error) {
			return gatedPerSwitch(j.reg, j.loaded)
		})
	if err != nil {
		return t, err
	}
	for i, reg := range regions {
		wave := (reg.W + reg.H - 2) * 3 // Tr+Tl = 3
		idle, loaded := gated[2*i], gated[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx%d", reg.W, reg.H),
			fmt.Sprintf("%d", wave), "14", f2(idle), f2(loaded),
		})
	}
	return t, nil
}
