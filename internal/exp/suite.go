package exp

import (
	"fmt"
	"sort"
	"strings"

	"adaptnoc"
)

// SuiteParams selects which evaluation units a suite runs and the knobs
// that shape individual units. It is the declarative half of a suite — the
// cost/seed knobs live in Options — and both halves have stable JSON
// forms, so a coordinator can ship a suite to another process and obtain
// byte-identical tables (see internal/fleet).
type SuiteParams struct {
	// Figs selects figures by key: 7-19, area, wiring, timing, chars,
	// ablation, switching, faults, or "all". Empty means "all".
	Figs []string `json:"figs,omitempty"`
	// Quick selects the reduced-fidelity variants of units that have one
	// (Fig16's app list, chars' window default).
	Quick bool `json:"quick,omitempty"`
	// FaultCounts are the fault counts for the faults unit (nil = 0,2,4,8).
	FaultCounts []int `json:"faultCounts,omitempty"`
	// CharCycles is the measurement window for the chars unit (0 = 60000,
	// or 20000 with Quick).
	CharCycles adaptnoc.Cycle `json:"charCycles,omitempty"`
}

// Unit is one independently runnable batch of a suite: a key (as accepted
// by -fig), whether it simulates through the evalConfig seam (Local units
// either run on the raw network substrate or are closed-form tables —
// nothing a remote evaluator could execute), and the run body.
type Unit struct {
	Key   string
	Local bool
	Run   func(Options) ([]Table, error)
}

// suiteFaultCounts applies the FaultCounts default.
func (p SuiteParams) suiteFaultCounts() []int {
	if len(p.FaultCounts) == 0 {
		return []int{0, 2, 4, 8}
	}
	return p.FaultCounts
}

// suiteCharCycles applies the CharCycles default.
func (p SuiteParams) suiteCharCycles() adaptnoc.Cycle {
	if p.CharCycles > 0 {
		return p.CharCycles
	}
	if p.Quick {
		return 20000
	}
	return 60000
}

// suiteKeys are every key Units accepts, in unit order (the mixed batch
// serves figures 7 and 10-13).
var suiteKeys = []string{
	"7", "10", "11", "12", "13",
	"8", "9", "14", "15", "16", "17", "18", "19",
	"switching", "faults", "ablation", "chars",
	"area", "wiring", "timing",
	"all",
}

// Units resolves the suite's figure selection into the ordered list of
// units to run. The order is fixed — it is the emission order of the
// merged table output, part of the byte-identity contract. Unknown keys
// are an error.
func Units(p SuiteParams) ([]Unit, error) {
	want := map[string]bool{}
	figs := p.Figs
	if len(figs) == 0 {
		figs = []string{"all"}
	}
	for _, f := range figs {
		k := strings.TrimSpace(f)
		if k == "" {
			continue
		}
		ok := false
		for _, known := range suiteKeys {
			if k == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("exp: unknown figure %q (want %s)", k, strings.Join(suiteKeys, ", "))
		}
		want[k] = true
	}
	all := want["all"]
	sel := func(k string) bool { return all || want[k] }
	one := func(t Table, err error) ([]Table, error) {
		return []Table{t}, err
	}

	units := []Unit{
		{Key: "mixed", Run: func(o Options) ([]Table, error) {
			m, err := RunMixed(o, "bfs", "canneal", "ferret")
			if err != nil {
				return nil, err
			}
			var ts []Table
			if sel("7") {
				ts = append(ts, m.Fig7())
			}
			if sel("10") {
				ts = append(ts, m.Fig10())
			}
			if sel("11") {
				ts = append(ts, m.Fig11())
			}
			if sel("12") {
				ts = append(ts, m.Fig12())
			}
			if sel("13") {
				ts = append(ts, m.Fig13())
			}
			return ts, nil
		}},
		{Key: "8", Run: func(o Options) ([]Table, error) { return one(Fig8(o)) }},
		{Key: "9", Run: func(o Options) ([]Table, error) { return one(Fig9(o)) }},
		{Key: "14", Run: func(o Options) ([]Table, error) { return one(Fig14(o)) }},
		{Key: "15", Run: func(o Options) ([]Table, error) { return one(Fig15(o)) }},
		{Key: "16", Run: func(o Options) ([]Table, error) { return one(Fig16(o, p.Quick)) }},
		{Key: "17", Run: func(o Options) ([]Table, error) { return one(Fig17(o)) }},
		{Key: "18", Run: func(o Options) ([]Table, error) { return one(Fig18(o)) }},
		{Key: "19", Run: func(o Options) ([]Table, error) { return one(Fig19(o)) }},
		{Key: "switching", Local: true, Run: func(o Options) ([]Table, error) { return one(TabSwitching(o.Parallelism)) }},
		{Key: "faults", Run: func(o Options) ([]Table, error) { return one(RunFaults(o, p.suiteFaultCounts())) }},
		{Key: "ablation", Run: func(o Options) ([]Table, error) { return one(Ablations(o)) }},
		{Key: "chars", Local: true, Run: func(o Options) ([]Table, error) {
			return one(CharacterizeTopologies(p.suiteCharCycles(), o.Seed, o.Parallelism))
		}},
		{Key: "area", Local: true, Run: func(Options) ([]Table, error) { return []Table{TabArea()}, nil }},
		{Key: "wiring", Local: true, Run: func(Options) ([]Table, error) { return []Table{TabWiring()}, nil }},
		{Key: "timing", Local: true, Run: func(Options) ([]Table, error) { return []Table{TabTiming()}, nil }},
	}

	selected := units[:0:0]
	for _, u := range units {
		take := sel(u.Key)
		if u.Key == "mixed" {
			take = sel("7") || sel("10") || sel("11") || sel("12") || sel("13")
		}
		if take {
			selected = append(selected, u)
		}
	}
	return selected, nil
}

// NormalizeFigs returns p.Figs trimmed, deduplicated, and sorted — the
// canonical selection used when hashing a suite for identity. Validity is
// Units' concern, not this function's.
func NormalizeFigs(figs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range figs {
		k := strings.TrimSpace(f)
		if k == "" || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunSuite runs the selected units in order and returns every table. It is
// the one entry point shared by the adaptnoc-experiments CLI and the fleet
// coordinator: any two callers handing it equal Options and SuiteParams
// get byte-identical tables, whether evaluation happens in-process or
// through Options.Eval.
func RunSuite(o Options, p SuiteParams) ([]Table, error) {
	units, err := Units(p)
	if err != nil {
		return nil, err
	}
	var tables []Table
	for _, u := range units {
		ts, err := u.Run(o)
		if err != nil {
			return nil, fmt.Errorf("exp: unit %s: %w", u.Key, err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}
