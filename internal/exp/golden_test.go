package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenOptions is a deliberately tiny but fully mixed run: three apps,
// all seven designs, fixed seed, pretrained agent. Small enough for the
// ordinary test suite, big enough that every design actually moves flits.
func goldenOptions() Options {
	o := QuickOptions()
	o.Cycles = 12000
	o.Budget = 400
	o.EpochCycles = 4000
	o.OracleProbeCycles = 6000
	return o
}

// TestGoldenMixedTables locks the complete mixed-workload table output to
// testdata/golden_mixed.txt. The determinism test guarantees identical
// results across -parallel settings; this golden file additionally
// catches silent drift across code changes — a routing tweak or idle-skip
// regression that shifts any latency/energy/selection number fails here
// with a readable diff. Refresh intentionally with:
//
//	go test ./internal/exp -run TestGoldenMixedTables -update
func TestGoldenMixedTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden mixed run is a full 14-simulation sweep")
	}
	m, err := RunMixed(goldenOptions(), "bfs", "canneal", "ferret")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tab := range []Table{m.Fig7(), m.Fig10(), m.Fig11(), m.Fig12(), m.Fig13()} {
		tab.Print(&buf)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "golden_mixed.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("mixed-workload tables drifted from %s.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, refresh with -update.",
			path, got, want)
	}
}
