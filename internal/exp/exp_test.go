package exp

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/traffic"
)

// quick returns fast options for CI-grade runs.
func quick() Options {
	o := QuickOptions()
	o.Cycles = 40000
	o.Budget = 1500
	o.EpochCycles = 8000
	return o
}

func TestRunMixedProducesAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	m, err := RunMixed(quick(), "bfs", "canneal", "ferret")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latency) != len(AllDesigns) || len(m.ExecTime) != len(AllDesigns) {
		t.Fatalf("incomplete metrics: %+v", m)
	}
	for i, d := range m.Designs {
		if m.Latency[i] <= 0 || m.ExecTime[i] <= 0 || m.TotalEnergy[i] <= 0 {
			t.Errorf("%v: empty metric (lat %v exec %v energy %v)",
				d, m.Latency[i], m.ExecTime[i], m.TotalEnergy[i])
		}
	}
	for _, tab := range []Table{m.Fig7(), m.Fig10(), m.Fig11(), m.Fig12(), m.Fig13()} {
		if len(tab.Rows) != len(AllDesigns) {
			t.Errorf("%s: %d rows, want %d", tab.Title, len(tab.Rows), len(AllDesigns))
		}
		tab.Print(os.Stderr)
	}
	// Shape checks robust at quick fidelity: the fabric's hop/topology
	// advantage shows in network latency (total latency additionally
	// carries epsilon-exploration queuing noise in short windows), and the
	// oracle-static fabric must beat the baseline outright.
	base := m.index(adaptnoc.DesignBaseline)
	ad := m.index(adaptnoc.DesignAdaptNoC)
	norl := m.index(adaptnoc.DesignAdaptNoRL)
	if m.NetLatency[ad] >= m.NetLatency[base] {
		t.Errorf("adapt-noc network latency %.1f not below baseline %.1f",
			m.NetLatency[ad], m.NetLatency[base])
	}
	if m.Latency[norl] > m.Latency[base] {
		t.Errorf("adapt-norl latency %.1f above baseline %.1f", m.Latency[norl], m.Latency[base])
	}
}

func TestSelectionFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	sel, err := RunSelection(o, []string{"blackscholes"}, traffic.CPU)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range sel[0].Fractions {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("selection fractions sum %v", sum)
	}
}

func TestOverheadTables(t *testing.T) {
	for _, tab := range []Table{TabArea(), TabWiring(), TabTiming()} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty", tab.Title)
		}
	}
	// Key published values must reproduce.
	area := TabArea()
	saving := area.Rows[len(area.Rows)-1][1]
	v, err := strconv.Atoi(strings.TrimSuffix(saving, "%"))
	if err != nil || v < 5 || v > 25 {
		t.Errorf("area saving %q out of the paper's ballpark (14%%)", saving)
	}
	wiring := TabWiring()
	if wiring.Rows[3][1] != "true" {
		t.Error("wiring budget check failed")
	}
}

func TestTablePrintAligns(t *testing.T) {
	tab := Table{
		Title:   "t",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"xxxxxx", "1"}},
	}
	var sb strings.Builder
	tab.Print(&sb)
	if !strings.Contains(sb.String(), "xxxxxx") {
		t.Fatal("row missing")
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}},
		Notes:   []string{"note"},
	}
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# demo", "a,b", `"x,y"`, "# note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestPerAppAndSelectionPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	o.OracleProbeCycles = 15000
	o.Cycles = 30000

	ms, err := RunPerApp(o, []string{"ferret"}, traffic.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || len(ms[0].Hops) != len(AllDesigns) {
		t.Fatalf("per-app metrics malformed: %+v", ms)
	}
	// Oracle static must not lose to the plain mesh baseline on hops for a
	// sparse CPU app (cmesh halves them).
	if ms[0].Hops[5] >= ms[0].Hops[0] {
		t.Errorf("adapt-norl hops %.2f not below baseline %.2f", ms[0].Hops[5], ms[0].Hops[0])
	}

	sel, err := RunSelection(o, []string{"heartwall"}, traffic.GPU)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range sel[0].Fractions {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("selection fractions sum %v", sum)
	}
}

func TestFig16Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	o.Cycles = 30000
	o.OracleProbeCycles = 15000
	tab, err := Fig16(o, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Fig16 rows %d", len(tab.Rows))
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := quick()
	o.Cycles = 30000
	tab, err := Ablations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("ablation rows %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "1.000" {
		t.Fatalf("full-design row not normalized: %v", tab.Rows[0])
	}
}
