package exp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRunMixedDeterministicAcrossParallelism is the regression guard for
// the runner's central promise: the same seed produces bit-identical
// results and rendered tables whether the simulations run serially or
// four at a time.
func TestRunMixedDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	run := func(parallelism int) MixedResult {
		t.Helper()
		o := quick()
		o.Parallelism = parallelism
		m, err := RunMixed(o, "bfs", "canneal", "ferret")
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		return m
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("MixedResult differs between parallelism 1 and 4:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
	for _, tab := range []struct {
		name string
		fn   func(MixedResult) Table
	}{
		{"Fig7", MixedResult.Fig7},
		{"Fig10", MixedResult.Fig10},
		{"Fig11", MixedResult.Fig11},
	} {
		var sb, pb bytes.Buffer
		tab.fn(serial).Print(&sb)
		tab.fn(parallel).Print(&pb)
		if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
			t.Errorf("%s table differs between parallelism 1 and 4:\n--- serial ---\n%s--- parallel ---\n%s",
				tab.name, sb.String(), pb.String())
		}
	}
}

// TestCharacterizeDeterministicAcrossParallelism covers the raw-network
// path (no Sim facade) through the same guarantee.
func TestCharacterizeDeterministicAcrossParallelism(t *testing.T) {
	serial, err := CharacterizeTopologies(8000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CharacterizeTopologies(8000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("characterization differs between parallelism 1 and 4:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
