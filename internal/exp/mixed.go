package exp

import (
	"context"
	"fmt"

	"adaptnoc"
)

// MixedResult bundles the mixed-workload comparison across all seven
// designs — the data behind Fig. 7 (packet latency), Fig. 10 (execution
// time), and Figs. 11-13 (energy).
type MixedResult struct {
	Designs []adaptnoc.Design
	// Latency metrics from the open-ended (latency) runs.
	Latency      []float64 // mean total packet latency (cycles)
	NetLatency   []float64
	QueueLatency []float64
	Hops         []float64
	// ExecTime from the budgeted runs (cycles, mean across apps).
	ExecTime []float64
	// ExecPerApp[d][a] is app a's completion cycle under design d.
	ExecPerApp [][]float64
	// Energy from the budgeted runs (pJ).
	TotalEnergy   []float64
	DynamicEnergy []float64
	StaticEnergy  []float64
}

// index returns the row of a design.
func (m MixedResult) index(d adaptnoc.Design) int {
	for i, x := range m.Designs {
		if x == d {
			return i
		}
	}
	return -1
}

// Normalized returns metric[i]/metric[baseline].
func normalized(xs []float64, base int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if xs[base] != 0 {
			out[i] = x / xs[base]
		}
	}
	return out
}

// RunMixed executes the mixed workload across every design: one
// fixed-window run for latency metrics and one budgeted run for execution
// time and energy (energy must compare equal work, as the paper does).
func RunMixed(o Options, gpu, cpu1, cpu2 string) (MixedResult, error) {
	m := MixedResult{Designs: AllDesigns}
	latApps := adaptnoc.MixedWorkload(gpu, cpu1, cpu2, 0)
	execApps := adaptnoc.MixedWorkload(gpu, cpu1, cpu2, o.Budget)

	oracleLat, err := o.oracleStatics(latApps)
	if err != nil {
		return m, err
	}
	oracleExec := append([]adaptnoc.AppSpec(nil), execApps...)
	for i := range oracleExec {
		oracleExec[i].Static = oracleLat[i].Static
	}

	// One latency run plus one budgeted run per design: 14 independent
	// simulations, fanned out and collected in design order.
	type job struct {
		design adaptnoc.Design
		apps   []adaptnoc.AppSpec
	}
	var jobs []job
	for _, d := range m.Designs {
		lApps, eApps := latApps, execApps
		if d == adaptnoc.DesignAdaptNoRL {
			lApps, eApps = oracleLat, oracleExec
		}
		jobs = append(jobs, job{d, lApps}, job{d, eApps})
	}
	results, err := mapJobs(o, jobs, func(ctx context.Context, j job) (adaptnoc.Results, error) {
		return o.runDesign(ctx, j.design, j.apps)
	})
	if err != nil {
		return m, err
	}

	for i := range m.Designs {
		lr, er := results[2*i], results[2*i+1]
		m.Latency = append(m.Latency, lr.MeanLatency())
		m.Hops = append(m.Hops, lr.MeanHops())
		var nl, ql, n float64
		for _, a := range lr.Apps {
			nl += a.AvgNetLatency * float64(a.DeliveredPackets)
			ql += a.AvgQueueLatency * float64(a.DeliveredPackets)
			n += float64(a.DeliveredPackets)
		}
		m.NetLatency = append(m.NetLatency, nl/n)
		m.QueueLatency = append(m.QueueLatency, ql/n)

		m.ExecTime = append(m.ExecTime, er.MeanExecTime())
		var perApp []float64
		for _, a := range er.Apps {
			perApp = append(perApp, float64(a.ExecTime))
		}
		m.ExecPerApp = append(m.ExecPerApp, perApp)
		m.TotalEnergy = append(m.TotalEnergy, er.TotalEnergy.TotalPJ())
		m.DynamicEnergy = append(m.DynamicEnergy, er.TotalEnergy.DynamicPJ())
		m.StaticEnergy = append(m.StaticEnergy, er.TotalEnergy.StaticPJ())
	}
	return m, nil
}

// Fig7 renders the packet-latency comparison, normalized to baseline.
func (m MixedResult) Fig7() Table {
	base := m.index(adaptnoc.DesignBaseline)
	normT := normalized(m.Latency, base)
	normN := normalized(m.NetLatency, base)
	normQ := normalized(m.QueueLatency, base)
	t := Table{
		Title:   "Fig. 7 — packet latency, mixed workload (normalized to baseline)",
		Columns: []string{"design", "total", "network", "queuing", "cycles(abs)"},
	}
	for i, d := range m.Designs {
		t.Rows = append(t.Rows, []string{
			d.String(), f3(normT[i]), f3(normN[i]), f3(normQ[i]), f2(m.Latency[i]),
		})
	}
	ad := m.index(adaptnoc.DesignAdaptNoC)
	t.Notes = append(t.Notes, fmt.Sprintf("adapt-noc latency reduction vs baseline: %s (paper: 34%%)",
		pct(1-normT[ad])))
	return t
}

// Fig10 renders the execution-time comparison. Each application's
// completion time is normalized against its own baseline run and the
// per-app ratios are averaged (the standard speedup methodology — a raw
// mean would be dominated by whichever application happens to run
// longest).
func (m MixedResult) Fig10() Table {
	base := m.index(adaptnoc.DesignBaseline)
	norm := make([]float64, len(m.Designs))
	for i := range m.Designs {
		var s float64
		n := 0
		for a, exec := range m.ExecPerApp[i] {
			if b := m.ExecPerApp[base][a]; b > 0 {
				s += exec / b
				n++
			}
		}
		if n > 0 {
			norm[i] = s / float64(n)
		}
	}
	t := Table{
		Title:   "Fig. 10 — execution time, mixed workload (per-app normalized to baseline, averaged)",
		Columns: []string{"design", "normalized", "mean cycles(abs)"},
	}
	for i, d := range m.Designs {
		t.Rows = append(t.Rows, []string{d.String(), f3(norm[i]), f2(m.ExecTime[i])})
	}
	ad := m.index(adaptnoc.DesignAdaptNoC)
	t.Notes = append(t.Notes, fmt.Sprintf("adapt-noc execution-time reduction vs baseline: %s (paper: 10%%)",
		pct(1-norm[ad])))
	return t
}

// Fig11 renders total NoC energy (equal-work runs).
func (m MixedResult) Fig11() Table {
	base := m.index(adaptnoc.DesignBaseline)
	norm := normalized(m.TotalEnergy, base)
	t := Table{
		Title:   "Fig. 11 — total NoC energy, mixed workload (normalized to baseline)",
		Columns: []string{"design", "normalized", "uJ(abs)"},
	}
	for i, d := range m.Designs {
		t.Rows = append(t.Rows, []string{d.String(), f3(norm[i]), f2(m.TotalEnergy[i] / 1e6)})
	}
	ad := m.index(adaptnoc.DesignAdaptNoC)
	t.Notes = append(t.Notes, fmt.Sprintf("adapt-noc energy saving vs baseline: %s (paper: 53%%)",
		pct(1-norm[ad])))
	return t
}

// Fig12 renders dynamic energy.
func (m MixedResult) Fig12() Table {
	base := m.index(adaptnoc.DesignBaseline)
	norm := normalized(m.DynamicEnergy, base)
	t := Table{
		Title:   "Fig. 12 — dynamic energy, mixed workload (normalized to baseline)",
		Columns: []string{"design", "normalized", "uJ(abs)"},
	}
	for i, d := range m.Designs {
		t.Rows = append(t.Rows, []string{d.String(), f3(norm[i]), f2(m.DynamicEnergy[i] / 1e6)})
	}
	return t
}

// Fig13 renders static energy.
func (m MixedResult) Fig13() Table {
	base := m.index(adaptnoc.DesignBaseline)
	norm := normalized(m.StaticEnergy, base)
	t := Table{
		Title:   "Fig. 13 — static energy, mixed workload (normalized to baseline)",
		Columns: []string{"design", "normalized", "uJ(abs)"},
	}
	for i, d := range m.Designs {
		t.Rows = append(t.Rows, []string{d.String(), f3(norm[i]), f2(m.StaticEnergy[i] / 1e6)})
	}
	return t
}
