// Package exp regenerates every table and figure of the paper's evaluation
// (Section V). Each Fig* function runs the required simulations and
// returns a typed result with the same rows/series the paper reports;
// Print renders it as an aligned text table. Absolute numbers differ from
// the paper (different substrate), but the comparisons — who wins, by
// roughly what factor, where the sweet spots lie — are the reproduction
// target (see EXPERIMENTS.md).
package exp

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"adaptnoc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/runner"
	"adaptnoc/internal/topology"
)

// Options tune experiment cost and reproducibility.
type Options struct {
	// Cycles is the measurement window for open-ended runs.
	Cycles adaptnoc.Cycle
	// Budget is the per-core instruction budget for execution-time runs.
	Budget int64
	// EpochCycles is the control epoch.
	EpochCycles int
	// Seed drives all randomness.
	Seed uint64
	// Agent supplies pretrained DQN weights; nil trains online during the
	// run (slower to converge but self-contained).
	Agent *rl.Net
	// OracleProbeCycles is the probe window used to pick the statically
	// best topology for Adapt-NoC-noRL (0 = use heuristic defaults).
	OracleProbeCycles adaptnoc.Cycle
	// Parallelism bounds how many independent simulations run at once:
	// <= 0 uses one worker per CPU (GOMAXPROCS), 1 forces serial
	// execution. Every driver collects results in job order and each
	// simulation owns its seed and state, so tables are identical at any
	// setting (see internal/runner).
	Parallelism int
	// CheckpointDir, when set, persists a checkpoint per simulation,
	// content-addressed by the canonical config, refreshed every
	// CheckpointEvery cycles and kept after completion. Checkpoints never
	// change what a run computes — they only make it resumable.
	CheckpointDir string
	// CheckpointEvery is the auto-checkpoint interval in cycles (<= 0
	// saves only at the end of each run).
	CheckpointEvery adaptnoc.Cycle
	// Resume restores each simulation from its checkpoint when one exists
	// and runs only the remaining cycles; a completed run's kept
	// checkpoint fast-forwards straight to its results. Results are
	// byte-identical either way.
	Resume bool
	// Shards sets each simulation's network-tick shard count: 1 (and the
	// zero value) is serial, k > 1 ticks row bands on k goroutines, < 0
	// selects automatically by chip size. Like Parallelism this is an
	// execution knob — results are byte-identical at any setting.
	Shards int
	// Eval, when set, replaces local execution for every simulation a
	// driver would run: instead of NewSim + Run*, the driver hands the
	// fully-built configuration and its run window to Eval and uses the
	// Results it returns. Exactly one of cycles/maxCycles is non-zero —
	// cycles for fixed-window runs, maxCycles for budgeted runs (advance
	// until every budgeted app finishes or maxCycles elapse). Because the
	// simulator is deterministic, any Eval that faithfully executes the
	// configuration (another process, a serve daemon, a fleet of them)
	// yields byte-identical tables; this is the seam the distributed
	// experiment coordinator (internal/fleet) plugs into. Checkpoint and
	// Shards options apply only to local execution and are ignored when
	// Eval is set. Eval must be safe for concurrent use: drivers fan
	// evaluations out at Options.Parallelism.
	Eval Eval
}

// Eval evaluates one simulation configuration for a run window and returns
// its Results (see Options.Eval).
type Eval func(ctx context.Context, cfg adaptnoc.Config, cycles, maxCycles adaptnoc.Cycle) (adaptnoc.Results, error)

// mapJobs fans the jobs over the runner pool at the options' parallelism
// and returns results in job order. Workers receive the pool's context and
// must thread it into Sim.RunContext / RunUntilFinishedContext so that the
// first failing job interrupts the sims still running, not just the ones
// not yet started.
func mapJobs[J, R any](o Options, jobs []J, worker func(context.Context, J) (R, error)) ([]R, error) {
	return runner.Map(context.Background(), o.Parallelism, jobs, worker)
}

// DefaultOptions returns full-fidelity settings (tens of minutes for the
// complete evaluation).
//
// The control epoch is 10K cycles rather than the paper's 50K: our
// synthetic application phases are several times shorter than full
// Parsec/Rodinia executions' phases, which shifts the epoch sweet spot
// down proportionally (the Fig. 17 sweep reports the shifted optimum
// honestly; EXPERIMENTS.md discusses it).
func DefaultOptions() Options {
	return Options{
		Cycles:            600000,
		Budget:            300000,
		EpochCycles:       10000,
		Seed:              2021,
		Agent:             rl.Pretrained(),
		OracleProbeCycles: 150000,
	}
}

// QuickOptions returns reduced-fidelity settings for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Cycles:            60000,
		Budget:            2500,
		EpochCycles:       10000,
		Seed:              2021,
		Agent:             rl.Pretrained(),
		OracleProbeCycles: 30000,
	}
}

// AllDesigns lists the evaluation's seven design points in paper order.
var AllDesigns = []adaptnoc.Design{
	adaptnoc.DesignBaseline,
	adaptnoc.DesignOSCAR,
	adaptnoc.DesignShortcut,
	adaptnoc.DesignFTBY,
	adaptnoc.DesignFTBYPG,
	adaptnoc.DesignAdaptNoRL,
	adaptnoc.DesignAdaptNoC,
}

// buildConfig assembles the Config for one design on a workload. The spec
// slice is copied: NewSim fills in per-app defaults on cfg.Apps, and
// concurrent runs must not share that storage.
func (o Options) buildConfig(d adaptnoc.Design, apps []adaptnoc.AppSpec) adaptnoc.Config {
	cfg := adaptnoc.Config{
		Design:      d,
		Apps:        append([]adaptnoc.AppSpec(nil), apps...),
		Seed:        o.Seed,
		EpochCycles: o.EpochCycles,
	}
	if d == adaptnoc.DesignAdaptNoC {
		if o.Agent != nil {
			cfg.RL.Pretrained = o.Agent
		} else {
			cfg.RL.Train = true
		}
	}
	return cfg
}

// checkpointFile names a simulation's checkpoint: the SHA-256 of its
// canonical config JSON, so any two runs of the same simulation — across
// figures, reruns, or processes — share one file. Empty when checkpointing
// is off.
func (o Options) checkpointFile(cfg adaptnoc.Config) (string, error) {
	if o.CheckpointDir == "" {
		return "", nil
	}
	blob, err := json.Marshal(cfg.Canonical())
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return filepath.Join(o.CheckpointDir, hex.EncodeToString(sum[:16])+".ckpt"), nil
}

// evalConfig executes one fully-built configuration — locally, or through
// Options.Eval when set — and returns its Results. Exactly one of
// cycles/maxCycles must be non-zero: cycles runs a fixed window, maxCycles
// runs until every budgeted application finishes or the cap elapses
// (callers decide whether an unfinished run is an error). The local path
// carries the execution knobs: Shards, and with CheckpointDir set the run
// auto-checkpoints (content-addressed by canonical config) and Resume
// continues from wherever the last checkpoint stood — including a kept
// final checkpoint, which skips the run entirely. None of those knobs
// changes what the run computes.
func (o Options) evalConfig(ctx context.Context, cfg adaptnoc.Config, cycles, maxCycles adaptnoc.Cycle) (adaptnoc.Results, error) {
	if o.Eval != nil {
		return o.Eval(ctx, cfg, cycles, maxCycles)
	}
	ckpt, err := o.checkpointFile(cfg)
	if err != nil {
		return adaptnoc.Results{}, err
	}
	var s *adaptnoc.Sim
	if o.Resume && ckpt != "" {
		if restored, err := adaptnoc.RestoreSimFromFile(ckpt); err == nil {
			s = restored
		}
		// A missing or unreadable checkpoint reruns from scratch:
		// determinism makes the fast-forward an optimization only.
	}
	if s == nil {
		if s, err = adaptnoc.NewSim(cfg); err != nil {
			return adaptnoc.Results{}, err
		}
	}
	if o.Shards != 0 {
		k := o.Shards
		if k < 0 {
			k = 0 // auto-select by chip size
		}
		s.SetShards(k)
		// Release the shard workers once this run's results are taken;
		// a fleet of finished simulations must not pin goroutines.
		defer s.StopWorkers()
	}
	if maxCycles > 0 {
		if ckpt == "" {
			_, err = s.RunUntilFinishedContext(ctx, maxCycles)
		} else {
			_, err = s.RunUntilFinishedCheckpointed(ctx, maxCycles-s.Kernel.Now(), ckpt, o.CheckpointEvery)
		}
	} else {
		if ckpt == "" {
			err = s.RunContext(ctx, cycles)
		} else {
			err = s.RunContextCheckpointed(ctx, cycles-s.Kernel.Now(), ckpt, o.CheckpointEvery)
		}
	}
	if err != nil {
		return adaptnoc.Results{}, err
	}
	return s.Results(), nil
}

// unfinishedApps reports how many of cfg's budgeted applications did not
// complete within res — the finished check for budgeted runs, computed
// from Results so it holds for local and remote evaluation alike (an
// unfinished budgeted app reports ExecTime -1).
func unfinishedApps(cfg adaptnoc.Config, res adaptnoc.Results) int {
	n := 0
	for i, a := range cfg.Apps {
		if a.InstrBudget > 0 && i < len(res.Apps) && res.Apps[i].ExecTime < 0 {
			n++
		}
	}
	return n
}

// runDesign executes one design for the options' window (or until budgeted
// apps finish) and returns results. The context interrupts a run in flight
// (within runCheckCycles kernel cycles) — pool cancellation does not wait
// for the remaining simulation window. Execution happens through
// evalConfig, so the checkpoint/shard knobs and the Eval hook all apply.
func (o Options) runDesign(ctx context.Context, d adaptnoc.Design, apps []adaptnoc.AppSpec) (adaptnoc.Results, error) {
	cfg := o.buildConfig(d, apps)
	budgeted := false
	for _, a := range apps {
		if a.InstrBudget > 0 {
			budgeted = true
			break
		}
	}
	if budgeted {
		maxCycles := 100 * o.Cycles
		res, err := o.evalConfig(ctx, cfg, 0, maxCycles)
		if err != nil {
			return adaptnoc.Results{}, fmt.Errorf("exp: %v: %w", d, err)
		}
		if unfinishedApps(cfg, res) > 0 {
			return adaptnoc.Results{}, fmt.Errorf("exp: %v did not finish within %d cycles", d, maxCycles)
		}
		return res, nil
	}
	res, err := o.evalConfig(ctx, cfg, o.Cycles, 0)
	if err != nil {
		return adaptnoc.Results{}, fmt.Errorf("exp: %v: %w", d, err)
	}
	return res, nil
}

// oracleStatics picks the statically best topology per application for the
// Adapt-NoC-noRL design point by probing each topology in isolation and
// minimizing the paper's cost power×(Tnet+Tqueue). With no probe budget it
// keeps the workload's heuristic defaults. The (app, topology) probes are
// independent simulations and fan out over the runner pool; the
// first-lowest reduction below walks them in the serial loop's order, so
// the chosen topologies never depend on parallelism.
func (o Options) oracleStatics(apps []adaptnoc.AppSpec) ([]adaptnoc.AppSpec, error) {
	out := append([]adaptnoc.AppSpec(nil), apps...)
	if o.OracleProbeCycles <= 0 {
		return out, nil
	}
	type probeJob struct {
		app  int
		kind topology.Kind
	}
	var jobs []probeJob
	for i := range out {
		for k := topology.Mesh; k < topology.NumKinds; k++ {
			jobs = append(jobs, probeJob{app: i, kind: k})
		}
	}
	costs, err := mapJobs(o, jobs, func(ctx context.Context, j probeJob) (float64, error) {
		probe := out[j.app]
		probe.Static = j.kind
		probe.InstrBudget = 0
		probe.ShareMCs = 0
		res, err := o.evalConfig(ctx, adaptnoc.Config{
			Design:      adaptnoc.DesignAdaptNoRL,
			Apps:        []adaptnoc.AppSpec{probe},
			Seed:        o.Seed + uint64(j.kind),
			EpochCycles: o.EpochCycles,
		}, o.OracleProbeCycles, 0)
		if err != nil {
			return 0, err
		}
		a := res.Apps[0]
		powerMW := a.Energy.TotalPJ() / (float64(res.Cycles) / 2.0) // 2 GHz
		return powerMW * (a.AvgNetLatency + a.AvgQueueLatency), nil
	})
	if err != nil {
		return nil, err
	}
	nk := int(topology.NumKinds - topology.Mesh)
	for i := range out {
		best, bestCost := topology.Mesh, costs[i*nk]
		for kj := 1; kj < nk; kj++ {
			if c := costs[i*nk+kj]; c < bestCost {
				best, bestCost = topology.Mesh+topology.Kind(kj), c
			}
		}
		out[i].Static = best
	}
	return out, nil
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Print writes the table.
func (t Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// CSV writes the table as RFC-4180 CSV (title and notes as comments).
func (t Table) CSV(w io.Writer) error {
	fmt.Fprintf(w, "# %s\n", t.Title)
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	return nil
}

// f2/f3/pct are cell formatters.
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
