package system

// Checkpoint support: the machine's dynamic state is the per-core
// outstanding-request windows, the per-app epoch and lifetime counters,
// the memory-controller queues, and the outstanding transaction table.
// The workload-side execution position (retired/phase/RNG for profiles,
// the dependency bitmaps for traces) lives in the sources and is
// serialized through SnapshotSources into its own checkpoint section.
// Everything else (tile sets, thresholds, hot slice) is a pure function
// of the configuration and is rebuilt by NewApp.

import (
	"fmt"
	"sort"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/snap"
	"adaptnoc/internal/traffic"
)

func snapshotWindow(w *snap.Writer, c WindowCounters) {
	w.I64(c.Retired)
	w.I64(c.L1DMisses)
	w.I64(c.L1IMisses)
	w.I64(c.L2Misses)
	w.I64(c.CoherencePackets)
	w.I64(c.DataPackets)
	w.I64(c.NetLatencySum)
	w.I64(c.QueueLatencySum)
	w.I64(c.HopSum)
	w.I64(c.Delivered)
}

func restoreWindow(r *snap.Reader) (WindowCounters, error) {
	var c WindowCounters
	for _, dst := range []*int64{
		&c.Retired, &c.L1DMisses, &c.L1IMisses, &c.L2Misses,
		&c.CoherencePackets, &c.DataPackets,
		&c.NetLatencySum, &c.QueueLatencySum, &c.HopSum, &c.Delivered,
	} {
		v, err := r.I64()
		if err != nil {
			return c, err
		}
		*dst = v
	}
	return c, nil
}

// SnapshotDrops writes the per-app fault-drop tallies (sorted by app ID).
// Serialized inside the fault checkpoint section, not the machine section,
// so pre-fault blobs keep decoding.
func (m *Machine) SnapshotDrops(w *snap.Writer) {
	ids := make([]int, 0, len(m.dropped))
	for id := range m.dropped {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Int(id)
		w.I64(m.dropped[id])
	}
}

// RestoreDrops reads what SnapshotDrops wrote.
func (m *Machine) RestoreDrops(r *snap.Reader) error {
	n, err := r.Count(2)
	if err != nil {
		return err
	}
	m.dropped = make(map[int]int64, n)
	for i := 0; i < n; i++ {
		id, err := r.Int()
		if err != nil {
			return err
		}
		v, err := r.I64()
		if err != nil {
			return err
		}
		m.dropped[id] = v
	}
	return nil
}

// Part-mark kinds inside the machine section (delta alignment only, never
// serialized; see snap.Part).
const (
	partMachHeader = iota
	partMachApp
	partMachCore
	partMachMC
	partMachTxn
)

// Snapshot writes the machine's dynamic state.
func (m *Machine) Snapshot(w *snap.Writer) {
	w.Mark(snap.PartKey(partMachHeader, 0))
	w.U64(m.nextTxn)

	w.Uvarint(uint64(len(m.apps)))
	for _, a := range m.apps {
		w.Mark(snap.PartKey(partMachApp, uint64(a.ID)))
		w.I64(int64(a.finishedAt))
		snapshotWindow(w, a.win)
		snapshotWindow(w, a.total)
		w.Uvarint(uint64(len(a.cores)))
		for ci, c := range a.cores {
			w.Mark(snap.PartKey(partMachCore, uint64(a.ID)<<16|uint64(ci)))
			w.Int(c.outstanding)
		}
	}

	// Memory controllers, sorted by tile for a canonical encoding.
	tiles := make([]int, 0, len(m.mcs))
	for t := range m.mcs {
		tiles = append(tiles, int(t))
	}
	sort.Ints(tiles)
	w.Uvarint(uint64(len(tiles)))
	for _, t := range tiles {
		mc := m.mcs[noc.NodeID(t)]
		w.Mark(snap.PartKey(partMachMC, uint64(t)))
		w.Int(t)
		w.I64(int64(mc.busyUntil))
		w.Int(mc.queueLen)
		w.I64(mc.served)
	}

	// Outstanding transactions, sorted by ID.
	ids := make([]uint64, 0, len(m.txns))
	for id := range m.txns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		t := m.txns[id]
		w.Mark(snap.PartKey(partMachTxn, id))
		w.U64(t.id)
		w.Int(t.app.ID)
		w.Int(coreIndex(t.app, t.core))
		w.Int(int(t.slice))
		w.Int(int(t.mc))
		w.Bool(t.needsMC)
		w.Int(int(t.stage))
	}
}

func coreIndex(a *App, c *core) int {
	for i, x := range a.cores {
		if x == c {
			return i
		}
	}
	panic(fmt.Sprintf("system: core %d not in app %d", c.tile, a.ID))
}

// Restore overlays a state written by Snapshot onto a freshly constructed
// machine carrying the same applications. It must run before the network
// restore so packet payloads can resolve transaction IDs.
func (m *Machine) Restore(r *snap.Reader) error {
	var err error
	if m.nextTxn, err = r.U64(); err != nil {
		return err
	}

	nApps, err := r.Count(1)
	if err != nil {
		return err
	}
	if nApps != len(m.apps) {
		return fmt.Errorf("system: checkpoint has %d apps, machine has %d", nApps, len(m.apps))
	}
	for _, a := range m.apps {
		fin, err := r.I64()
		if err != nil {
			return err
		}
		a.finishedAt = sim.Cycle(fin)
		if a.win, err = restoreWindow(r); err != nil {
			return err
		}
		if a.total, err = restoreWindow(r); err != nil {
			return err
		}
		nCores, err := r.Count(1)
		if err != nil {
			return err
		}
		if nCores != len(a.cores) {
			return fmt.Errorf("system: checkpoint has %d cores for app %d, machine has %d",
				nCores, a.ID, len(a.cores))
		}
		for _, c := range a.cores {
			if c.outstanding, err = r.Int(); err != nil {
				return err
			}
		}
	}

	nMCs, err := r.Count(2)
	if err != nil {
		return err
	}
	mcs := make(map[noc.NodeID]*mcState, nMCs)
	for i := 0; i < nMCs; i++ {
		tile, err := r.Int()
		if err != nil {
			return err
		}
		mc := &mcState{}
		busy, err := r.I64()
		if err != nil {
			return err
		}
		mc.busyUntil = sim.Cycle(busy)
		if mc.queueLen, err = r.Int(); err != nil {
			return err
		}
		if mc.served, err = r.I64(); err != nil {
			return err
		}
		mcs[noc.NodeID(tile)] = mc
	}
	m.mcs = mcs

	nTxns, err := r.Count(3)
	if err != nil {
		return err
	}
	m.txns = make(map[uint64]*txn, nTxns)
	for i := 0; i < nTxns; i++ {
		t := &txn{}
		if t.id, err = r.U64(); err != nil {
			return err
		}
		appID, err := r.Int()
		if err != nil {
			return err
		}
		if t.app = m.appByID(appID); t.app == nil {
			return fmt.Errorf("system: transaction %d references unknown app %d", t.id, appID)
		}
		ci, err := r.Int()
		if err != nil {
			return err
		}
		if ci < 0 || ci >= len(t.app.cores) {
			return fmt.Errorf("system: transaction %d references core %d of app %d", t.id, ci, appID)
		}
		t.core = t.app.cores[ci]
		slice, err := r.Int()
		if err != nil {
			return err
		}
		t.slice = noc.NodeID(slice)
		mc, err := r.Int()
		if err != nil {
			return err
		}
		t.mc = noc.NodeID(mc)
		if t.needsMC, err = r.Bool(); err != nil {
			return err
		}
		stage, err := r.Int()
		if err != nil {
			return err
		}
		if stage < int(stageToSlice) || stage > int(stageToMC) {
			return fmt.Errorf("system: transaction %d has stage %d", t.id, stage)
		}
		t.stage = txnStage(stage)
		if t.id == 0 || t.id > m.nextTxn {
			return fmt.Errorf("system: transaction ID %d out of range", t.id)
		}
		if m.txns[t.id] != nil {
			return fmt.Errorf("system: duplicate transaction %d", t.id)
		}
		m.txns[t.id] = t
	}
	return nil
}

// SnapshotSources writes every application's workload-source state; it
// fills the checkpoint's "source" section.
func (m *Machine) SnapshotSources(w *snap.Writer) {
	w.Uvarint(uint64(len(m.apps)))
	for _, a := range m.apps {
		w.Mark(snap.PartKey(traffic.PartSrcApp, uint64(a.ID)))
		a.src.Snapshot(w)
	}
}

// RestoreSources reads what SnapshotSources wrote onto identically
// constructed applications.
func (m *Machine) RestoreSources(r *snap.Reader) error {
	n, err := r.Count(1)
	if err != nil {
		return err
	}
	if n != len(m.apps) {
		return fmt.Errorf("system: checkpoint has %d sources, machine has %d apps", n, len(m.apps))
	}
	for _, a := range m.apps {
		if err := a.src.Restore(r); err != nil {
			return fmt.Errorf("system: source of app %d: %w", a.ID, err)
		}
	}
	return nil
}

// Payload codec: packets carry either nothing, a fire-and-forget
// coherence marker, a transaction handle, or a trace-replay node index.
// The network's snapshot delegates payload bytes to its owner through
// this pair.
const (
	payloadNil = iota
	payloadCoh
	payloadTxn
	payloadTrace
)

// EncodePayload implements noc.PayloadCodec.
func (m *Machine) EncodePayload(w *snap.Writer, payload any) error {
	switch t := payload.(type) {
	case nil:
		w.Int(payloadNil)
	case cohMsg:
		w.Int(payloadCoh)
	case *txn:
		w.Int(payloadTxn)
		w.U64(t.id)
	case traceRef:
		w.Int(payloadTrace)
		w.U64(uint64(t))
	default:
		return fmt.Errorf("system: unserializable payload %T", payload)
	}
	return nil
}

// DecodePayload implements noc.PayloadCodec. Transaction handles resolve
// against the already-restored transaction table.
func (m *Machine) DecodePayload(r *snap.Reader) (any, error) {
	kind, err := r.Int()
	if err != nil {
		return nil, err
	}
	switch kind {
	case payloadNil:
		return nil, nil
	case payloadCoh:
		return cohMsg{}, nil
	case payloadTxn:
		id, err := r.U64()
		if err != nil {
			return nil, err
		}
		t := m.txns[id]
		if t == nil {
			return nil, fmt.Errorf("system: packet references unknown transaction %d", id)
		}
		return t, nil
	case payloadTrace:
		ref, err := r.U64()
		if err != nil {
			return nil, err
		}
		return traceRef(ref), nil
	}
	return nil, fmt.Errorf("system: unknown payload kind %d", kind)
}
