package system

import (
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
	"adaptnoc/internal/traffic"
)

// buildMachine runs one app on a 4x4 mesh region.
func buildMachine(t *testing.T, prof traffic.Profile, budget int64, p Params) (*Machine, *App, *sim.Kernel) {
	t.Helper()
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	topology.ConfigureMeshRegion(net, reg)
	k := sim.NewKernel()
	k.Register(net)
	m := NewMachine(net, k, p)
	tiles := reg.Tiles(cfg.Width)
	app := NewApp(0, prof, tiles, []noc.NodeID{tiles[0]}, budget, sim.NewRNG(42))
	m.AddApp(app)
	return m, app, k
}

func TestAppRunsToCompletion(t *testing.T) {
	prof, ok := traffic.ByName("blackscholes")
	if !ok {
		t.Fatal("missing profile")
	}
	m, app, k := buildMachine(t, prof, 5000, DefaultParams())
	k.Run(2_000_000)
	if !m.AllFinished() {
		t.Fatalf("app not finished after %d cycles (progress %.0f)", k.Now(), app.Progress())
	}
	if app.FinishedAt() <= 0 {
		t.Fatal("no finish time recorded")
	}
	tot := app.Totals()
	if tot.Retired < 5000*15 { // 15 cores (16 tiles - 1 MC)
		t.Fatalf("retired %d instructions, want >= %d", tot.Retired, 5000*15)
	}
	if tot.L1DMisses == 0 || tot.DataPackets == 0 {
		t.Fatalf("no memory traffic generated: %+v", tot)
	}
}

func TestExecutionTimeSensitiveToNoCLatency(t *testing.T) {
	// A memory-bound app must finish later when the memory hierarchy is
	// slower — the closed loop that Fig. 10 depends on.
	prof, ok := traffic.ByName("canneal")
	if !ok {
		t.Fatal("missing profile")
	}
	fast := DefaultParams()
	slow := DefaultParams()
	slow.MCLatencyCycles = 400
	slow.L2LatencyCycles = 40

	run := func(p Params) sim.Cycle {
		m, app, k := buildMachine(t, prof, 3000, p)
		k.Run(3_000_000)
		if !m.AllFinished() {
			t.Fatalf("not finished (params %+v)", p)
		}
		return app.FinishedAt()
	}
	tf, ts := run(fast), run(slow)
	if ts <= tf {
		t.Fatalf("slow memory finished at %d, not after fast %d", ts, tf)
	}
}

func TestWindowCountersResetAndAccumulate(t *testing.T) {
	prof, _ := traffic.ByName("kmeans")
	_, app, k := buildMachine(t, prof, 0, DefaultParams())
	k.Run(20000)
	w1 := app.TakeWindow()
	if w1.Retired == 0 || w1.Delivered == 0 {
		t.Fatalf("empty first window: %+v", w1)
	}
	if w1.AvgNetLatency() <= 0 || w1.AvgHops() <= 0 {
		t.Fatalf("latency window empty: %+v", w1)
	}
	w2 := app.TakeWindow()
	if w2.Retired != 0 {
		t.Fatalf("window not reset: %+v", w2)
	}
	k.RunFor(20000)
	w3 := app.TakeWindow()
	if w3.Retired == 0 {
		t.Fatal("window did not accumulate after reset")
	}
}

func TestGPUProfileGeneratesMoreTrafficThanCPU(t *testing.T) {
	gpu, _ := traffic.ByName("bfs")
	cpu, _ := traffic.ByName("blackscholes")
	run := func(p traffic.Profile) int64 {
		_, app, k := buildMachine(t, p, 0, DefaultParams())
		k.Run(50000)
		tot := app.Totals()
		return tot.CoherencePackets + tot.DataPackets
	}
	g, c := run(gpu), run(cpu)
	if g <= 2*c {
		t.Fatalf("GPU traffic %d not >> CPU traffic %d", g, c)
	}
}

func TestMCSharingIncreasesServiceSpread(t *testing.T) {
	prof, _ := traffic.ByName("kmeans")
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	topology.ConfigureMeshRegion(net, reg)
	k := sim.NewKernel()
	k.Register(net)
	m := NewMachine(net, k, DefaultParams())
	tiles := reg.Tiles(cfg.Width)
	app := NewApp(0, prof, tiles, []noc.NodeID{tiles[0], tiles[3]}, 0, sim.NewRNG(1))
	m.AddApp(app)
	k.Run(60000)
	if m.MCServed(tiles[0]) == 0 || m.MCServed(tiles[3]) == 0 {
		t.Fatalf("requests not spread over both MCs: %d / %d",
			m.MCServed(tiles[0]), m.MCServed(tiles[3]))
	}
}

func TestStallAccountingUnderTightMLP(t *testing.T) {
	prof, _ := traffic.ByName("canneal")
	prof.MLP = 1
	_, app, k := buildMachine(t, prof, 0, DefaultParams())
	k.Run(30000)
	if app.StallCycles() == 0 {
		t.Fatal("MLP=1 memory-bound app never stalled")
	}
}

func TestForeignMCFraction(t *testing.T) {
	prof, _ := traffic.ByName("kmeans")
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	k := sim.NewKernel()
	k.Register(net)
	m := NewMachine(net, k, DefaultParams())
	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	app := NewApp(0, prof, reg.Tiles(cfg.Width), []noc.NodeID{0}, 0, sim.NewRNG(5))
	foreign := noc.NodeID(36) // inside the chip, outside the region
	app.SetForeignMCs([]noc.NodeID{foreign}, 0.25)
	m.AddApp(app)
	k.Run(60000)
	own, f := m.MCServed(0), m.MCServed(foreign)
	if own == 0 || f == 0 {
		t.Fatalf("MCs not both used: own=%d foreign=%d", own, f)
	}
	frac := float64(f) / float64(own+f)
	if frac < 0.18 || frac > 0.33 {
		t.Fatalf("foreign fraction %.3f, want ~0.25", frac)
	}
}

func TestObserverChainsAfterMachine(t *testing.T) {
	prof, _ := traffic.ByName("ferret")
	m, _, k := buildMachine(t, prof, 0, DefaultParams())
	seen := 0
	m.SetObserver(func(p *noc.Packet, _ sim.Cycle) { seen++ })
	k.Run(10000)
	if seen == 0 {
		t.Fatal("observer never called")
	}
}

func TestRemoveApp(t *testing.T) {
	prof, _ := traffic.ByName("ferret")
	m, app, k := buildMachine(t, prof, 0, DefaultParams())
	k.Run(2000)
	k.RunFor(3000) // let in-flight traffic land
	before := app.Totals().Retired
	// In-flight transactions of a removed app still complete safely (the
	// app object lives on); only its cores stop ticking.
	m.RemoveApp(app)
	k.RunFor(5000)
	if app.Totals().Retired != before {
		t.Fatal("removed app kept running")
	}
	if len(m.Apps()) != 0 {
		t.Fatal("app list not empty")
	}
}
