// Package system is the closed-loop heterogeneous machine model that
// replaces the paper's gem5-GPU full-system simulation: CPU and GPU cores
// retire instructions according to a traffic.Profile, miss in their L1s,
// query distributed shared L2 slices over the request virtual network,
// spill to memory controllers on L2 misses, and stall when their
// memory-level parallelism window fills — so NoC latency feeds back into
// execution time exactly as in the paper's Fig. 10 experiment.
package system

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/traffic"
)

// Params are the memory-hierarchy timing constants.
type Params struct {
	L2LatencyCycles int `json:"l2LatencyCycles"` // L2 slice lookup
	MCLatencyCycles int `json:"mcLatencyCycles"` // DRAM access latency
	MCServiceCycles int `json:"mcServiceCycles"` // minimum spacing between MC request services (bandwidth)
}

// DefaultParams returns timings typical of the paper's 2 GHz setup.
func DefaultParams() Params {
	return Params{L2LatencyCycles: 8, MCLatencyCycles: 80, MCServiceCycles: 2}
}

// txn is one outstanding memory transaction. stage tracks where the next
// packet carrying it is headed (a transaction is on exactly one packet at
// a time, so the field never races). Every transaction lives in the
// machine's txns table under a stable uint64 ID from creation until its
// data reply retires it, so packets and scheduled events can reference it
// by value — the handle a checkpoint can serialize where a pointer cannot.
type txn struct {
	id      uint64
	app     *App
	core    *core
	slice   noc.NodeID
	mc      noc.NodeID
	needsMC bool
	stage   txnStage
}

type txnStage int

const (
	stageToSlice txnStage = iota
	stageToMC
)

// cohMsg marks a fire-and-forget coherence message.
type cohMsg struct{}

// WindowCounters are the per-epoch instruction/cache observations feeding
// the RL state (Table I).
type WindowCounters struct {
	Retired   int64
	L1DMisses int64
	L1IMisses int64
	L2Misses  int64 // L2 -> memory controller accesses

	CoherencePackets int64
	DataPackets      int64

	// Latency window over delivered packets of this app.
	NetLatencySum   int64
	QueueLatencySum int64
	HopSum          int64
	Delivered       int64
}

// AvgNetLatency returns the window's mean network latency in cycles.
func (w WindowCounters) AvgNetLatency() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.NetLatencySum) / float64(w.Delivered)
}

// AvgQueueLatency returns the window's mean queuing latency in cycles.
func (w WindowCounters) AvgQueueLatency() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.QueueLatencySum) / float64(w.Delivered)
}

// AvgHops returns the window's mean router hop count.
func (w WindowCounters) AvgHops() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.HopSum) / float64(w.Delivered)
}

// core is one CPU or GPU core.
type core struct {
	app  *App
	tile noc.NodeID
	rng  *sim.RNG

	retired     int64
	phaseIdx    int
	phaseInstr  int64
	ipcAcc      float64
	outstanding int
	stallCycles int64
}

// App is one running application instance mapped onto a set of tiles.
type App struct {
	ID      int
	Profile traffic.Profile
	// Tiles are all tiles of the application's region.
	Tiles []noc.NodeID
	// MCTiles are the application's own memory controllers (one per 2x4
	// sub-block in the paper's provisioning); SetMCs replaces the set.
	MCTiles []noc.NodeID
	// ForeignMCs are shared controllers in adjacent subNoCs
	// (Section II-C.2); ForeignFrac of off-chip accesses go there.
	ForeignMCs  []noc.NodeID
	ForeignFrac float64
	// InstrBudget is per core; 0 means run forever (latency experiments).
	InstrBudget int64

	cores      []*core
	l2Tiles    []noc.NodeID
	hotSlice   noc.NodeID // home of hotspot-skewed accesses (never an MC)
	thresholds []phaseThresholds
	finishedAt sim.Cycle
	win        WindowCounters
	total      WindowCounters
	rng        *sim.RNG
}

// NewApp builds an application over its tiles. Cores run on every tile
// except the MC tiles; every tile hosts an L2 slice.
func NewApp(id int, prof traffic.Profile, tiles []noc.NodeID, mcTiles []noc.NodeID, budget int64, rng *sim.RNG) *App {
	if len(tiles) == 0 {
		panic("system: app with no tiles")
	}
	if len(prof.Phases) == 0 {
		panic("system: profile with no phases")
	}
	a := &App{
		ID: id, Profile: prof,
		Tiles:       append([]noc.NodeID(nil), tiles...),
		MCTiles:     append([]noc.NodeID(nil), mcTiles...),
		InstrBudget: budget, finishedAt: -1,
		rng: rng,
	}
	isMC := make(map[noc.NodeID]bool)
	for _, m := range mcTiles {
		isMC[m] = true
	}
	for _, t := range tiles {
		a.l2Tiles = append(a.l2Tiles, t)
		if !isMC[t] {
			a.cores = append(a.cores, &core{app: a, tile: t, rng: rng.Split(uint64(t))})
		}
	}
	if len(a.cores) == 0 {
		panic("system: app has no core tiles")
	}
	// The hotspot home slice must not share a tile with a memory
	// controller: one NI cannot source both flows.
	a.hotSlice = a.cores[len(a.cores)/2].tile
	for _, ph := range prof.Phases {
		a.thresholds = append(a.thresholds, makeThresholds(ph))
	}
	return a
}

// phaseThresholds pre-scales a phase's per-instruction event rates to
// 21-bit integer thresholds so one Uint64 draw decides the L1I miss,
// coherence message, and L1D access events together (hot path).
type phaseThresholds struct {
	l1i, coh, mem uint32
}

const thresholdBits = 21

func makeThresholds(ph traffic.Phase) phaseThresholds {
	scale := func(p float64) uint32 {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return uint32(p * float64(uint64(1)<<thresholdBits))
	}
	return phaseThresholds{
		l1i: scale(ph.L1IMissRate),
		coh: scale(ph.CoherencePerKInstr / 1000.0),
		mem: scale(ph.MemFrac),
	}
}

// SetMCs replaces the app's own memory-controller set.
func (a *App) SetMCs(mcs []noc.NodeID) { a.MCTiles = append([]noc.NodeID(nil), mcs...) }

// SetForeignMCs configures shared foreign controllers and the fraction of
// off-chip accesses directed to them.
func (a *App) SetForeignMCs(mcs []noc.NodeID, frac float64) {
	a.ForeignMCs = append([]noc.NodeID(nil), mcs...)
	a.ForeignFrac = frac
}

// Finished reports whether every core has retired its budget and drained
// its outstanding requests.
func (a *App) Finished() bool { return a.finishedAt >= 0 }

// FinishedAt returns the completion cycle (-1 if still running).
func (a *App) FinishedAt() sim.Cycle { return a.finishedAt }

// TakeWindow returns and resets the app's epoch counters.
func (a *App) TakeWindow() WindowCounters {
	w := a.win
	a.win = WindowCounters{}
	return w
}

// Totals returns lifetime counters (never reset).
func (a *App) Totals() WindowCounters { return a.total }

// Progress returns mean retired instructions per core.
func (a *App) Progress() float64 {
	var s int64
	for _, c := range a.cores {
		s += c.retired
	}
	return float64(s) / float64(len(a.cores))
}

// StallCycles returns cumulative full-window stall cycles across cores.
func (a *App) StallCycles() int64 {
	var s int64
	for _, c := range a.cores {
		s += c.stallCycles
	}
	return s
}

// mcState is one memory controller's service queue.
type mcState struct {
	busyUntil sim.Cycle
	queueLen  int
	served    int64
}

// Machine couples apps, the memory hierarchy, and a network.
type Machine struct {
	P      Params
	net    *noc.Network
	kernel *sim.Kernel
	apps   []*App
	mcs    map[noc.NodeID]*mcState

	// txns is the outstanding-transaction table: ID → live transaction.
	// The map is only ever looked up by key (never iterated on the hot
	// path), so map ordering cannot leak into behaviour; snapshots iterate
	// it sorted.
	txns    map[uint64]*txn
	nextTxn uint64

	// onDeliver chains an external observer after the machine's own
	// delivery handling.
	onDeliver noc.DeliverFunc

	// dropGen counts drop-tally mutations for delta-checkpoint skipping.
	dropGen uint64

	// dropped tallies fault-dropped packets per application ID. Kept out
	// of WindowCounters so the machine checkpoint section layout stays
	// frozen; the fault section serializes it instead.
	dropped map[int]int64
}

// Kernel operation IDs owned by this package (range 100-199).
const (
	// opSliceRespond continues transaction args[0] after its L2 lookup.
	opSliceRespond sim.OpID = 100 + iota
	// opMCReply dequeues transaction args[0] from its memory controller
	// and sends the data reply.
	opMCReply
)

// NewMachine wires a machine to a network and kernel. It takes over the
// network's delivery callback; chain further observers with SetObserver.
func NewMachine(net *noc.Network, kernel *sim.Kernel, p Params) *Machine {
	m := &Machine{
		P: p, net: net, kernel: kernel,
		mcs:     make(map[noc.NodeID]*mcState),
		txns:    make(map[uint64]*txn),
		dropped: make(map[int]int64),
	}
	net.SetDeliverFunc(m.deliver)
	net.SetDropFunc(m.Drop)
	kernel.Register(m)
	kernel.RegisterOp(opSliceRespond, func(now sim.Cycle, args [3]int64) {
		m.sliceRespond(m.txnByID(args[0]), now)
	})
	kernel.RegisterOp(opMCReply, func(now sim.Cycle, args [3]int64) {
		t := m.txnByID(args[0])
		m.mcs[t.mc].queueLen--
		m.replyData(t, t.mc, now)
	})
	return m
}

// txnByID resolves a transaction handle carried by an event or packet; a
// dangling ID is a simulator bug, not a recoverable condition.
func (m *Machine) txnByID(id int64) *txn {
	t := m.txns[uint64(id)]
	if t == nil {
		panic(fmt.Sprintf("system: unknown transaction %d", id))
	}
	return t
}

// newTxn allocates a transaction ID and enters the transaction into the
// outstanding table.
func (m *Machine) newTxn(t *txn) *txn {
	m.nextTxn++
	t.id = m.nextTxn
	m.txns[t.id] = t
	return t
}

// retireTxn removes a completed transaction from the table.
func (m *Machine) retireTxn(t *txn) { delete(m.txns, t.id) }

// SetObserver installs an extra packet-delivery observer.
func (m *Machine) SetObserver(fn noc.DeliverFunc) { m.onDeliver = fn }

// AddApp registers an application; its MCs get service state.
func (m *Machine) AddApp(a *App) {
	m.apps = append(m.apps, a)
	for _, mc := range a.MCTiles {
		if m.mcs[mc] == nil {
			m.mcs[mc] = &mcState{}
		}
	}
}

// RemoveApp detaches a finished application.
func (m *Machine) RemoveApp(a *App) {
	for i, x := range m.apps {
		if x == a {
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			return
		}
	}
}

// Apps returns the registered applications.
func (m *Machine) Apps() []*App { return m.apps }

// AllFinished reports whether every app with a budget has completed.
func (m *Machine) AllFinished() bool {
	for _, a := range m.apps {
		if a.InstrBudget > 0 && !a.Finished() {
			return false
		}
	}
	return true
}

// Tick advances every core one cycle.
func (m *Machine) Tick(now sim.Cycle) {
	for _, a := range m.apps {
		if a.InstrBudget > 0 && a.Finished() {
			continue
		}
		done := a.InstrBudget > 0
		for _, c := range a.cores {
			m.tickCore(a, c, now)
			if done && (c.retired < a.InstrBudget || c.outstanding > 0) {
				done = false
			}
		}
		if done && a.finishedAt < 0 {
			a.finishedAt = now
		}
	}
}

// tickCore retires instructions and issues memory traffic for one core.
func (m *Machine) tickCore(a *App, c *core, now sim.Cycle) {
	if c.outstanding >= a.Profile.MLP {
		c.stallCycles++
		return
	}
	if a.InstrBudget > 0 && c.retired >= a.InstrBudget {
		return
	}
	c.ipcAcc += a.Profile.IPC
	n := int(c.ipcAcc)
	c.ipcAcc -= float64(n)
	const mask = (uint64(1) << thresholdBits) - 1
	for i := 0; i < n; i++ {
		ph := a.Profile.Phases[c.phaseIdx]
		th := a.thresholds[c.phaseIdx]
		c.retired++
		a.win.Retired++
		a.total.Retired++
		c.phaseInstr++
		if c.phaseInstr >= ph.Instructions {
			c.phaseInstr = 0
			c.phaseIdx = (c.phaseIdx + 1) % len(a.Profile.Phases)
		}

		// One draw decides the three independent per-instruction events
		// (disjoint 21-bit fields).
		u := c.rng.Uint64()
		if uint32(u&mask) < th.l1i {
			a.win.L1IMisses++
			a.total.L1IMisses++
		}
		if uint32((u>>thresholdBits)&mask) < th.coh {
			m.sendCoherence(a, c, now)
		}
		if uint32((u>>(2*thresholdBits))&mask) < th.mem && c.rng.Bernoulli(ph.L1MissRate) {
			a.win.L1DMisses++
			a.total.L1DMisses++
			m.issueMemAccess(a, c, ph, now)
			if c.outstanding >= a.Profile.MLP {
				break
			}
		}
	}
}

// sendCoherence emits a fire-and-forget control message to a peer core.
func (m *Machine) sendCoherence(a *App, c *core, now sim.Cycle) {
	if len(a.cores) < 2 {
		return
	}
	peer := a.cores[c.rng.Intn(len(a.cores))]
	if peer == c {
		return
	}
	p := m.net.NewPacket(c.tile, peer.tile, noc.ClassCoherence, noc.VNetRequest, a.ID)
	p.Payload = cohMsg{}
	m.net.Enqueue(p, now)
	a.win.CoherencePackets++
	a.total.CoherencePackets++
}

// issueMemAccess starts an L1-miss transaction: request to the home L2
// slice, optionally forwarded to a memory controller, data reply back.
func (m *Machine) issueMemAccess(a *App, c *core, ph traffic.Phase, now sim.Cycle) {
	slice := m.pickSlice(a, c, ph)
	t := m.newTxn(&txn{app: a, core: c, slice: slice, needsMC: c.rng.Bernoulli(ph.L2MissRate)})
	if t.needsMC {
		if len(a.ForeignMCs) > 0 && c.rng.Bernoulli(a.ForeignFrac) {
			t.mc = a.ForeignMCs[c.rng.Intn(len(a.ForeignMCs))]
		} else {
			t.mc = a.MCTiles[c.rng.Intn(len(a.MCTiles))]
		}
		a.win.L2Misses++
		a.total.L2Misses++
	}
	c.outstanding++
	if slice == c.tile {
		// Local slice: no request traffic; resolve after the L2 lookup.
		m.kernel.AfterOp(sim.Cycle(m.P.L2LatencyCycles), opSliceRespond, int64(t.id), 0, 0)
		return
	}
	p := m.net.NewPacket(c.tile, slice, noc.ClassCoherence, noc.VNetRequest, a.ID)
	p.Payload = t
	m.net.Enqueue(p, now)
	a.win.CoherencePackets++
	a.total.CoherencePackets++
}

// pickSlice maps an access to its home L2 slice (hotspot-skewed striping).
func (m *Machine) pickSlice(a *App, c *core, ph traffic.Phase) noc.NodeID {
	if ph.Hotspot > 0 && c.rng.Bernoulli(ph.Hotspot) {
		return a.hotSlice
	}
	return a.l2Tiles[c.rng.Intn(len(a.l2Tiles))]
}

// deliver dispatches arriving packets to the memory-hierarchy agents.
func (m *Machine) deliver(p *noc.Packet, now sim.Cycle) {
	if p.App >= 0 {
		if a := m.appByID(p.App); a != nil {
			a.win.Delivered++
			a.win.NetLatencySum += int64(p.NetworkLatency())
			a.win.QueueLatencySum += int64(p.QueuingLatency())
			a.win.HopSum += int64(p.Hops)
			a.total.Delivered++
			a.total.NetLatencySum += int64(p.NetworkLatency())
			a.total.QueueLatencySum += int64(p.QueuingLatency())
			a.total.HopSum += int64(p.Hops)
		}
	}
	switch t := p.Payload.(type) {
	case *txn:
		switch {
		case p.VNet == noc.VNetReply:
			t.core.outstanding--
			if t.core.outstanding < 0 {
				panic(fmt.Sprintf("system: outstanding underflow at core %d", t.core.tile))
			}
			m.retireTxn(t)
		case t.stage == stageToSlice:
			m.kernel.AfterOp(sim.Cycle(m.P.L2LatencyCycles), opSliceRespond, int64(t.id), 0, 0)
		default: // stageToMC
			m.mcService(t, now)
		}
	case cohMsg:
		// Fire-and-forget coherence message: nothing further.
	}
	if m.onDeliver != nil {
		m.onDeliver(p, now)
	}
}

// Drop handles a packet a fault made undeliverable. The transaction it
// carried (if any) is abandoned: the issuing core's outstanding slot is
// released so it keeps issuing — lost requests cost survival rate, not a
// wedged core. Safe to retire here because kernel descriptor events only
// ever reference a transaction while it is NOT riding a packet
// (opSliceRespond and opMCReply are scheduled after delivery).
func (m *Machine) Drop(p *noc.Packet, now sim.Cycle) {
	if p.App >= 0 {
		m.dropGen++
		m.dropped[p.App]++
	}
	if t, ok := p.Payload.(*txn); ok {
		t.core.outstanding--
		if t.core.outstanding < 0 {
			panic(fmt.Sprintf("system: outstanding underflow at core %d on drop", t.core.tile))
		}
		m.retireTxn(t)
	}
}

// DropGen returns the drop-tally generation counter.
func (m *Machine) DropGen() uint64 { return m.dropGen }

// DroppedPackets returns the fault-dropped packet count of one application.
func (m *Machine) DroppedPackets(appID int) int64 { return m.dropped[appID] }

// sliceRespond continues a transaction after the L2 lookup.
func (m *Machine) sliceRespond(t *txn, now sim.Cycle) {
	if t.needsMC {
		t.stage = stageToMC
		if t.slice == t.mc {
			m.mcService(t, now)
			return
		}
		p := m.net.NewPacket(t.slice, t.mc, noc.ClassCoherence, noc.VNetRequest, t.app.ID)
		p.Payload = t
		m.net.Enqueue(p, now)
		t.app.win.CoherencePackets++
		t.app.total.CoherencePackets++
		return
	}
	m.replyData(t, t.slice, now)
}

// mcService queues a transaction at a memory controller and replies after
// DRAM latency, respecting the controller's service bandwidth.
func (m *Machine) mcService(t *txn, now sim.Cycle) {
	mc := m.mcs[t.mc]
	if mc == nil {
		mc = &mcState{}
		m.mcs[t.mc] = mc
	}
	start := now
	if mc.busyUntil > start {
		start = mc.busyUntil
	}
	mc.busyUntil = start + sim.Cycle(m.P.MCServiceCycles)
	mc.queueLen++
	mc.served++
	m.kernel.ScheduleOp(start+sim.Cycle(m.P.MCLatencyCycles), opMCReply, int64(t.id), 0, 0)
}

// replyData sends the data reply that completes a transaction.
func (m *Machine) replyData(t *txn, from noc.NodeID, now sim.Cycle) {
	if from == t.core.tile {
		t.core.outstanding--
		m.retireTxn(t)
		return
	}
	p := m.net.NewPacket(from, t.core.tile, noc.ClassData, noc.VNetReply, t.app.ID)
	p.Payload = t
	m.net.Enqueue(p, now)
	t.app.win.DataPackets++
	t.app.total.DataPackets++
}

func (m *Machine) appByID(id int) *App {
	for _, a := range m.apps {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// MCServed returns total requests served by a memory controller.
func (m *Machine) MCServed(tile noc.NodeID) int64 {
	if mc := m.mcs[tile]; mc != nil {
		return mc.served
	}
	return 0
}
