// Package system is the closed-loop heterogeneous machine model that
// replaces the paper's gem5-GPU full-system simulation: cores produce
// instruction/memory behaviour through a traffic.Source (synthetic phase
// machines or recorded dependency traces), miss in their L1s, query
// distributed shared L2 slices over the request virtual network, spill to
// memory controllers on L2 misses, and stall when their memory-level
// parallelism window fills — so NoC latency feeds back into execution
// time exactly as in the paper's Fig. 10 experiment.
package system

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/traffic"
)

// Params are the memory-hierarchy timing constants.
type Params struct {
	L2LatencyCycles int `json:"l2LatencyCycles"` // L2 slice lookup
	MCLatencyCycles int `json:"mcLatencyCycles"` // DRAM access latency
	MCServiceCycles int `json:"mcServiceCycles"` // minimum spacing between MC request services (bandwidth)
}

// DefaultParams returns timings typical of the paper's 2 GHz setup.
func DefaultParams() Params {
	return Params{L2LatencyCycles: 8, MCLatencyCycles: 80, MCServiceCycles: 2}
}

// txn is one outstanding memory transaction. stage tracks where the next
// packet carrying it is headed (a transaction is on exactly one packet at
// a time, so the field never races). Every transaction lives in the
// machine's txns table under a stable uint64 ID from creation until its
// data reply retires it, so packets and scheduled events can reference it
// by value — the handle a checkpoint can serialize where a pointer cannot.
type txn struct {
	id      uint64
	app     *App
	core    *core
	slice   noc.NodeID
	mc      noc.NodeID
	needsMC bool
	stage   txnStage
}

type txnStage int

const (
	stageToSlice txnStage = iota
	stageToMC
)

// cohMsg marks a fire-and-forget coherence message.
type cohMsg struct{}

// traceRef is the payload of a trace-replay packet: the node index handed
// back to the source's Retirer when the packet leaves the network.
type traceRef uint64

// WindowCounters are the per-epoch instruction/cache observations feeding
// the RL state (Table I). The embedded traffic.Stats block is the portion
// the workload source produces; the packet and latency counters are
// machine-owned.
type WindowCounters struct {
	traffic.Stats

	CoherencePackets int64
	DataPackets      int64

	// Latency window over delivered packets of this app.
	NetLatencySum   int64
	QueueLatencySum int64
	HopSum          int64
	Delivered       int64
}

// AvgNetLatency returns the window's mean network latency in cycles.
func (w WindowCounters) AvgNetLatency() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.NetLatencySum) / float64(w.Delivered)
}

// AvgQueueLatency returns the window's mean queuing latency in cycles.
func (w WindowCounters) AvgQueueLatency() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.QueueLatencySum) / float64(w.Delivered)
}

// AvgHops returns the window's mean router hop count.
func (w WindowCounters) AvgHops() float64 {
	if w.Delivered == 0 {
		return 0
	}
	return float64(w.HopSum) / float64(w.Delivered)
}

// core is one CPU or GPU core's machine-side state; everything about what
// the core executes lives in the application's Source.
type core struct {
	app         *App
	tile        noc.NodeID
	outstanding int
}

// App is one running application instance mapped onto a set of tiles.
type App struct {
	ID int
	// Profile is the synthetic profile driving a phase-sourced app; for
	// trace-driven apps only Name is set (the recorded label).
	Profile traffic.Profile
	// Tiles are all tiles of the application's region.
	Tiles []noc.NodeID
	// MCTiles are the application's own memory controllers (one per 2x4
	// sub-block in the paper's provisioning); SetMCs replaces the set.
	MCTiles []noc.NodeID
	// ForeignMCs are shared controllers in adjacent subNoCs
	// (Section II-C.2); ForeignFrac of off-chip accesses go there.
	ForeignMCs  []noc.NodeID
	ForeignFrac float64
	// InstrBudget is per core; 0 means run forever (latency experiments)
	// or, for trace-driven apps, until the trace drains.
	InstrBudget int64

	cores   []*core
	layout  *traffic.Layout
	src     traffic.Source
	retirer traffic.Retirer // src's Retirer side, nil if none
	finite  bool
	// deliverable is the machine's fault-guard routability query, wired
	// by AddApp (nil until then; see Deliverable).
	deliverable func(from, to noc.NodeID) bool
	finishedAt  sim.Cycle
	win         WindowCounters
	total       WindowCounters
}

// NewApp builds a profile-driven application over its tiles. Cores run on
// every tile except the MC tiles; every tile hosts an L2 slice.
func NewApp(id int, prof traffic.Profile, tiles []noc.NodeID, mcTiles []noc.NodeID, budget int64, rng *sim.RNG) *App {
	if len(prof.Phases) == 0 {
		panic("system: profile with no phases")
	}
	a := newAppShell(id, tiles, mcTiles)
	a.Profile = prof
	a.InstrBudget = budget
	a.attachSource(traffic.NewPhaseSource(prof, budget, a.layout, rng))
	return a
}

// NewSourceApp builds an application driven by an externally constructed
// Source (trace replay). label names the workload in results tables.
func NewSourceApp(id int, label string, src traffic.Source, tiles []noc.NodeID, mcTiles []noc.NodeID) *App {
	a := newAppShell(id, tiles, mcTiles)
	a.Profile = traffic.Profile{Name: label}
	a.attachSource(src)
	return a
}

// newAppShell builds the machine-side tile geometry shared by every
// source kind.
func newAppShell(id int, tiles []noc.NodeID, mcTiles []noc.NodeID) *App {
	if len(tiles) == 0 {
		panic("system: app with no tiles")
	}
	a := &App{
		ID:         id,
		Tiles:      append([]noc.NodeID(nil), tiles...),
		MCTiles:    append([]noc.NodeID(nil), mcTiles...),
		layout:     &traffic.Layout{},
		finishedAt: -1,
	}
	isMC := make(map[noc.NodeID]bool)
	for _, m := range mcTiles {
		isMC[m] = true
	}
	for _, t := range tiles {
		a.layout.L2Tiles = append(a.layout.L2Tiles, t)
		if !isMC[t] {
			a.cores = append(a.cores, &core{app: a, tile: t})
			a.layout.CoreTiles = append(a.layout.CoreTiles, t)
		}
	}
	if len(a.cores) == 0 {
		panic("system: app has no core tiles")
	}
	// The hotspot home slice must not share a tile with a memory
	// controller: one NI cannot source both flows.
	a.layout.HotSlice = a.cores[len(a.cores)/2].tile
	a.layout.MCTiles = a.MCTiles
	return a
}

// attachSource binds the source to the app's machine-side view.
func (a *App) attachSource(src traffic.Source) {
	a.src = src
	a.retirer, _ = src.(traffic.Retirer)
	a.finite = src.Finite()
	src.Bind(a)
}

// Outstanding implements traffic.View.
func (a *App) Outstanding(core int) int { return a.cores[core].outstanding }

// Deliverable implements traffic.View: it asks the machine's network
// whether a from→to request injection would survive the fault guard. An
// unregistered app (unit tests drive sources without a machine) reports
// everything deliverable.
func (a *App) Deliverable(from, to noc.NodeID) bool {
	return a.deliverable == nil || a.deliverable(from, to)
}

// Stats implements traffic.View.
func (a *App) Stats() (win, total *traffic.Stats) { return &a.win.Stats, &a.total.Stats }

// Source returns the app's workload source.
func (a *App) Source() traffic.Source { return a.src }

// SetMCs replaces the app's own memory-controller set.
func (a *App) SetMCs(mcs []noc.NodeID) {
	a.MCTiles = append([]noc.NodeID(nil), mcs...)
	a.layout.MCTiles = a.MCTiles
}

// SetForeignMCs configures shared foreign controllers and the fraction of
// off-chip accesses directed to them.
func (a *App) SetForeignMCs(mcs []noc.NodeID, frac float64) {
	a.ForeignMCs = append([]noc.NodeID(nil), mcs...)
	a.ForeignFrac = frac
	a.layout.ForeignMCs = a.ForeignMCs
	a.layout.ForeignFrac = frac
}

// Finished reports whether the workload has fully completed and drained.
func (a *App) Finished() bool { return a.finishedAt >= 0 }

// FinishedAt returns the completion cycle (-1 if still running).
func (a *App) FinishedAt() sim.Cycle { return a.finishedAt }

// TakeWindow returns and resets the app's epoch counters.
func (a *App) TakeWindow() WindowCounters {
	w := a.win
	a.win = WindowCounters{}
	return w
}

// Totals returns lifetime counters (never reset).
func (a *App) Totals() WindowCounters { return a.total }

// Progress returns the source's completion indicator (profile apps: mean
// retired instructions per core; trace apps: retired packets).
func (a *App) Progress() float64 { return a.src.Progress() }

// StallCycles returns cumulative full-window stall cycles across cores.
func (a *App) StallCycles() int64 { return a.src.StallCycles() }

// mcState is one memory controller's service queue.
type mcState struct {
	busyUntil sim.Cycle
	queueLen  int
	served    int64
}

// Machine couples apps, the memory hierarchy, and a network.
type Machine struct {
	P      Params
	net    *noc.Network
	kernel *sim.Kernel
	apps   []*App
	mcs    map[noc.NodeID]*mcState

	// txns is the outstanding-transaction table: ID → live transaction.
	// The map is only ever looked up by key (never iterated on the hot
	// path), so map ordering cannot leak into behaviour; snapshots iterate
	// it sorted.
	txns    map[uint64]*txn
	nextTxn uint64

	// onDeliver chains an external observer after the machine's own
	// delivery handling.
	onDeliver noc.DeliverFunc

	// rec, when set, captures every injection into a dependency trace.
	rec *traffic.Recorder

	// dropGen counts drop-tally mutations for delta-checkpoint skipping.
	dropGen uint64

	// dropped tallies fault-dropped packets per application ID. Kept out
	// of WindowCounters so the machine checkpoint section layout stays
	// frozen; the fault section serializes it instead.
	dropped map[int]int64
}

// Kernel operation IDs owned by this package (range 100-199).
const (
	// opSliceRespond continues transaction args[0] after its L2 lookup.
	opSliceRespond sim.OpID = 100 + iota
	// opMCReply dequeues transaction args[0] from its memory controller
	// and sends the data reply.
	opMCReply
)

// NewMachine wires a machine to a network and kernel. It takes over the
// network's delivery callback; chain further observers with SetObserver.
func NewMachine(net *noc.Network, kernel *sim.Kernel, p Params) *Machine {
	m := &Machine{
		P: p, net: net, kernel: kernel,
		mcs:     make(map[noc.NodeID]*mcState),
		txns:    make(map[uint64]*txn),
		dropped: make(map[int]int64),
	}
	net.SetDeliverFunc(m.deliver)
	net.SetDropFunc(m.Drop)
	kernel.Register(m)
	kernel.RegisterOp(opSliceRespond, func(now sim.Cycle, args [3]int64) {
		m.sliceRespond(m.txnByID(args[0]), now)
	})
	kernel.RegisterOp(opMCReply, func(now sim.Cycle, args [3]int64) {
		t := m.txnByID(args[0])
		m.mcs[t.mc].queueLen--
		m.replyData(t, t.mc, now)
	})
	return m
}

// txnByID resolves a transaction handle carried by an event or packet; a
// dangling ID is a simulator bug, not a recoverable condition.
func (m *Machine) txnByID(id int64) *txn {
	t := m.txns[uint64(id)]
	if t == nil {
		panic(fmt.Sprintf("system: unknown transaction %d", id))
	}
	return t
}

// newTxn allocates a transaction ID and enters the transaction into the
// outstanding table.
func (m *Machine) newTxn(t *txn) *txn {
	m.nextTxn++
	t.id = m.nextTxn
	m.txns[t.id] = t
	return t
}

// retireTxn removes a completed transaction from the table.
func (m *Machine) retireTxn(t *txn) { delete(m.txns, t.id) }

// SetObserver installs an extra packet-delivery observer.
func (m *Machine) SetObserver(fn noc.DeliverFunc) { m.onDeliver = fn }

// SetRecorder attaches a dependency-trace recorder. It must be wired
// before the first cycle of a fresh run (recorded gaps are absolute from
// cycle 0).
func (m *Machine) SetRecorder(rec *traffic.Recorder) { m.rec = rec }

// AddApp registers an application; its MCs get service state.
func (m *Machine) AddApp(a *App) {
	a.deliverable = func(from, to noc.NodeID) bool {
		return m.net.Deliverable(from, to, noc.VNetRequest)
	}
	m.apps = append(m.apps, a)
	for _, mc := range a.MCTiles {
		if m.mcs[mc] == nil {
			m.mcs[mc] = &mcState{}
		}
	}
}

// RemoveApp detaches a finished application.
func (m *Machine) RemoveApp(a *App) {
	for i, x := range m.apps {
		if x == a {
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			return
		}
	}
}

// Apps returns the registered applications.
func (m *Machine) Apps() []*App { return m.apps }

// AllFinished reports whether every finite app has completed.
func (m *Machine) AllFinished() bool {
	for _, a := range m.apps {
		if a.finite && !a.Finished() {
			return false
		}
	}
	return true
}

// Tick advances every application one cycle: the source simulates its
// cores, then the buffered injection events apply in issue order.
func (m *Machine) Tick(now sim.Cycle) {
	for _, a := range m.apps {
		if a.finite && a.Finished() {
			continue
		}
		done := a.src.Advance(now)
		for {
			ev, ok := a.src.NextEvent()
			if !ok {
				break
			}
			m.applyEvent(a, ev, now)
		}
		if a.finite && done && a.finishedAt < 0 {
			a.finishedAt = now
		}
	}
}

// applyEvent turns one source event into machine activity.
func (m *Machine) applyEvent(a *App, ev traffic.Event, now sim.Cycle) {
	switch ev.Kind {
	case traffic.EvCoherence:
		src, dst := a.cores[ev.Core].tile, a.cores[ev.Peer].tile
		p := m.net.NewPacket(src, dst, noc.ClassCoherence, noc.VNetRequest, a.ID)
		p.Payload = cohMsg{}
		m.net.Enqueue(p, now)
		a.win.CoherencePackets++
		a.total.CoherencePackets++
		if m.rec != nil {
			m.rec.Coherence(a.ID, src, dst, now, a.total.Stats)
		}

	case traffic.EvMem:
		c := a.cores[ev.Core]
		t := m.newTxn(&txn{app: a, core: c, slice: ev.Slice, mc: ev.MC, needsMC: ev.NeedsMC})
		c.outstanding++
		if m.rec != nil {
			m.rec.TxnStart(a.ID, ev.Core, t.id)
		}
		if ev.Slice == c.tile {
			// Local slice: no request traffic; resolve after the L2 lookup.
			m.kernel.AfterOp(sim.Cycle(m.P.L2LatencyCycles), opSliceRespond, int64(t.id), 0, 0)
			return
		}
		p := m.net.NewPacket(c.tile, ev.Slice, noc.ClassCoherence, noc.VNetRequest, a.ID)
		p.Payload = t
		m.net.Enqueue(p, now)
		a.win.CoherencePackets++
		a.total.CoherencePackets++
		if m.rec != nil {
			m.rec.TxnSend(t.id, c.tile, ev.Slice, false, now, a.total.Stats)
		}

	case traffic.EvPacket:
		class, vnet := noc.ClassCoherence, noc.VNetRequest
		if ev.Data {
			class, vnet = noc.ClassData, noc.VNetReply
		}
		p := m.net.NewPacket(ev.Src, ev.Dst, class, vnet, a.ID)
		p.Payload = traceRef(ev.Ref)
		m.net.Enqueue(p, now)
		if ev.Data {
			a.win.DataPackets++
			a.total.DataPackets++
		} else {
			a.win.CoherencePackets++
			a.total.CoherencePackets++
		}
		if m.rec != nil {
			m.rec.Packet(a.ID, ev.Src, ev.Dst, ev.Data, now, a.total.Stats)
		}
	}
}

// deliver dispatches arriving packets to the memory-hierarchy agents.
func (m *Machine) deliver(p *noc.Packet, now sim.Cycle) {
	if p.App >= 0 {
		if a := m.appByID(p.App); a != nil {
			a.win.Delivered++
			a.win.NetLatencySum += int64(p.NetworkLatency())
			a.win.QueueLatencySum += int64(p.QueuingLatency())
			a.win.HopSum += int64(p.Hops)
			a.total.Delivered++
			a.total.NetLatencySum += int64(p.NetworkLatency())
			a.total.QueueLatencySum += int64(p.QueuingLatency())
			a.total.HopSum += int64(p.Hops)
		}
	}
	switch t := p.Payload.(type) {
	case *txn:
		if m.rec != nil {
			m.rec.TxnPacketDone(t.id, now)
		}
		switch {
		case p.VNet == noc.VNetReply:
			t.core.outstanding--
			if t.core.outstanding < 0 {
				panic(fmt.Sprintf("system: outstanding underflow at core %d", t.core.tile))
			}
			if m.rec != nil {
				m.rec.TxnEnd(t.id, now)
			}
			m.retireTxn(t)
		case t.stage == stageToSlice:
			m.kernel.AfterOp(sim.Cycle(m.P.L2LatencyCycles), opSliceRespond, int64(t.id), 0, 0)
		default: // stageToMC
			m.mcService(t, now)
		}
	case traceRef:
		if a := m.appByID(p.App); a != nil && a.retirer != nil {
			a.retirer.Retire(uint64(t), now)
		}
	case cohMsg:
		// Fire-and-forget coherence message: nothing further.
	}
	if m.onDeliver != nil {
		m.onDeliver(p, now)
	}
}

// Drop handles a packet a fault made undeliverable. The transaction it
// carried (if any) is abandoned: the issuing core's outstanding slot is
// released so it keeps issuing — lost requests cost survival rate, not a
// wedged core. Safe to retire here because kernel descriptor events only
// ever reference a transaction while it is NOT riding a packet
// (opSliceRespond and opMCReply are scheduled after delivery). A dropped
// trace packet still retires its node so dependents release — a faulty
// fabric degrades a replay instead of deadlocking it.
func (m *Machine) Drop(p *noc.Packet, now sim.Cycle) {
	if p.App >= 0 {
		m.dropGen++
		m.dropped[p.App]++
	}
	switch t := p.Payload.(type) {
	case *txn:
		t.core.outstanding--
		if t.core.outstanding < 0 {
			panic(fmt.Sprintf("system: outstanding underflow at core %d on drop", t.core.tile))
		}
		if m.rec != nil {
			m.rec.TxnPacketDone(t.id, now)
			m.rec.TxnEnd(t.id, now)
		}
		m.retireTxn(t)
	case traceRef:
		if a := m.appByID(p.App); a != nil && a.retirer != nil {
			a.retirer.Retire(uint64(t), now)
		}
	}
}

// DropGen returns the drop-tally generation counter.
func (m *Machine) DropGen() uint64 { return m.dropGen }

// DroppedPackets returns the fault-dropped packet count of one application.
func (m *Machine) DroppedPackets(appID int) int64 { return m.dropped[appID] }

// sliceRespond continues a transaction after the L2 lookup.
func (m *Machine) sliceRespond(t *txn, now sim.Cycle) {
	if t.needsMC {
		t.stage = stageToMC
		if t.slice == t.mc {
			m.mcService(t, now)
			return
		}
		p := m.net.NewPacket(t.slice, t.mc, noc.ClassCoherence, noc.VNetRequest, t.app.ID)
		p.Payload = t
		m.net.Enqueue(p, now)
		t.app.win.CoherencePackets++
		t.app.total.CoherencePackets++
		if m.rec != nil {
			m.rec.TxnSend(t.id, t.slice, t.mc, false, now, t.app.total.Stats)
		}
		return
	}
	m.replyData(t, t.slice, now)
}

// mcService queues a transaction at a memory controller and replies after
// DRAM latency, respecting the controller's service bandwidth.
func (m *Machine) mcService(t *txn, now sim.Cycle) {
	mc := m.mcs[t.mc]
	if mc == nil {
		mc = &mcState{}
		m.mcs[t.mc] = mc
	}
	start := now
	if mc.busyUntil > start {
		start = mc.busyUntil
	}
	mc.busyUntil = start + sim.Cycle(m.P.MCServiceCycles)
	mc.queueLen++
	mc.served++
	m.kernel.ScheduleOp(start+sim.Cycle(m.P.MCLatencyCycles), opMCReply, int64(t.id), 0, 0)
}

// replyData sends the data reply that completes a transaction.
func (m *Machine) replyData(t *txn, from noc.NodeID, now sim.Cycle) {
	if from == t.core.tile {
		t.core.outstanding--
		if m.rec != nil {
			m.rec.TxnEnd(t.id, now)
		}
		m.retireTxn(t)
		return
	}
	p := m.net.NewPacket(from, t.core.tile, noc.ClassData, noc.VNetReply, t.app.ID)
	p.Payload = t
	m.net.Enqueue(p, now)
	t.app.win.DataPackets++
	t.app.total.DataPackets++
	if m.rec != nil {
		m.rec.TxnSend(t.id, from, t.core.tile, true, now, t.app.total.Stats)
	}
}

func (m *Machine) appByID(id int) *App {
	for _, a := range m.apps {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// MCServed returns total requests served by a memory controller.
func (m *Machine) MCServed(tile noc.NodeID) int64 {
	if mc := m.mcs[tile]; mc != nil {
		return mc.served
	}
	return 0
}
