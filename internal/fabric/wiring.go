package fabric

import (
	"fmt"
	"sort"

	"adaptnoc/internal/noc"
)

// CheckWiring verifies the adaptable-link wiring discipline of
// Section II-A.2 on the network's current channel set: each row and each
// column owns exactly one bidirectional adaptable link (a forward wire and
// a reverse wire, each segmentable by the quad-state repeaters), so all
// adaptable channels riding one wire must occupy disjoint intervals
// (shared endpoints are allowed — that is a switched-off repeater, as in
// Fig. 3(b)).
//
// Convention: a row segment travelling +x rides the row's forward wire and
// one travelling −x rides the reverse wire (a reversed link in the paper's
// terms); columns likewise with +y/−y.
func CheckWiring(net *noc.Network) error {
	type wire struct {
		horizontal   bool
		index        int // row (y) or column (x)
		reverse      bool
		intermediate bool // metal layer (each layer has its own wires)
	}
	segs := make(map[wire][][2]int)

	for _, ch := range net.Channels() {
		if ch.Kind != noc.ChanAdaptable {
			continue
		}
		if ch.From.Kind != noc.EndRouter || ch.To.Kind != noc.EndRouter {
			return fmt.Errorf("fabric: adaptable channel with NI endpoint: %v->%v", ch.From, ch.To)
		}
		a := noc.CoordOf(ch.From.Router, net.Cfg.Width)
		b := noc.CoordOf(ch.To.Router, net.Cfg.Width)
		var w wire
		var lo, hi int
		switch {
		case a.Y == b.Y && a.X != b.X:
			w = wire{horizontal: true, index: a.Y, reverse: b.X < a.X, intermediate: ch.Intermediate}
			lo, hi = min2(a.X, b.X), max2(a.X, b.X)
		case a.X == b.X && a.Y != b.Y:
			w = wire{horizontal: false, index: a.X, reverse: b.Y < a.Y, intermediate: ch.Intermediate}
			lo, hi = min2(a.Y, b.Y), max2(a.Y, b.Y)
		default:
			return fmt.Errorf("fabric: adaptable channel not axis-aligned: %v->%v", ch.From, ch.To)
		}
		segs[w] = append(segs[w], [2]int{lo, hi})
	}

	for w, list := range segs {
		sort.Slice(list, func(i, j int) bool { return list[i][0] < list[j][0] })
		for i := 1; i < len(list); i++ {
			if list[i][0] < list[i-1][1] {
				axis, rev := "row", "fwd"
				if !w.horizontal {
					axis = "col"
				}
				if w.reverse {
					rev = "rev"
				}
				return fmt.Errorf("fabric: overlapping adaptable segments on %s %d (%s wire): [%d,%d] and [%d,%d]",
					axis, w.index, rev, list[i-1][0], list[i-1][1], list[i][0], list[i][1])
			}
		}
	}
	return nil
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
