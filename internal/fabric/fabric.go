// Package fabric implements the Adapt-NoC reconfigurable fabric of
// Section II: dynamic allocation of disjoint subNoC regions, runtime
// switching of each subNoC between mesh, cmesh, torus, and tree topologies
// through the adaptable routers' mux attachments and the segmentable /
// reversible adaptable links, the deadlock-free reconfiguration protocol
// with its notification wave and Ts connection-setup window, memory
// controller sharing across adjacent subNoCs, and the wiring-resource
// discipline (one bidirectional adaptable link per row and column, hosting
// disjoint segments).
package fabric

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// Config carries the fabric's reconfiguration timing parameters.
type Config struct {
	// SetupCycles is Ts, the router connection/table setup time during
	// which route computation stalls (14 cycles, Section IV-A).
	SetupCycles int
	// DrainTimeout bounds the wait for a region to quiesce during
	// reconfiguration; exceeding it panics (it would mean packets are
	// stuck, i.e. a routing bug).
	DrainTimeout sim.Cycle
}

// DefaultConfig returns the paper's timing parameters.
func DefaultConfig() Config {
	return Config{SetupCycles: 14, DrainTimeout: 50000}
}

// SubNoCState tracks the reconfiguration lifecycle.
type SubNoCState int

// SubNoC states.
const (
	StateActive SubNoCState = iota
	StateNotifying
	StateDraining
	StateSettingUp
)

// String implements fmt.Stringer.
func (s SubNoCState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateNotifying:
		return "notifying"
	case StateDraining:
		return "draining"
	case StateSettingUp:
		return "setting-up"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SubNoC is one dynamically allocated region running one application with
// its own topology (Fig. 1(b)).
type SubNoC struct {
	ID     int
	App    int
	Region topology.Region
	Kind   topology.Kind
	// MCTile is the tile hosting the region's primary memory controller;
	// it is the root of the tree topology.
	MCTile noc.NodeID
	// MCTiles lists every MC in the region (primary first); the tree
	// topologies give each one injection fanout.
	MCTiles []noc.NodeID

	state SubNoCState

	// Reconfiguration statistics.
	Reconfigs      int64
	ReconfigCycles int64 // cycles spent with injection gated
}

// State returns the current lifecycle state.
func (s *SubNoC) State() SubNoCState { return s.state }

// Fabric owns the subNoCs of one network.
type Fabric struct {
	cfg    Config
	net    *noc.Network
	kernel *sim.Kernel

	subnocs []*SubNoC
	shares  []*mcShare
	nextID  int

	// frozen stops all topology switching: the fault engine freezes the
	// fabric at its first strike so damage repair and reconfiguration
	// never race over the wiring. Freezing is permanent for the run.
	frozen bool

	// gen counts mutations of the state Snapshot serializes. Delta
	// checkpointing compares it against the generation recorded at the
	// previous snapshot to skip re-encoding a quiescent fabric.
	gen uint64
}

// Gen returns the fabric's snapshot-state generation counter.
func (f *Fabric) Gen() uint64 { return f.gen }

// Freeze permanently disables topology switching; subsequent Reconfigure
// calls become silent no-ops (their done callbacks still run).
func (f *Fabric) Freeze() { f.frozen = true }

// Frozen reports whether the fabric has been frozen.
func (f *Fabric) Frozen() bool { return f.frozen }

// New creates a fabric over a network whose routers get the Adapt-NoC port
// complement (4 adaptable-link mux ports beyond the mesh five). The
// network must be freshly constructed (no channels).
func New(net *noc.Network, kernel *sim.Kernel, cfg Config) *Fabric {
	for _, r := range net.Routers() {
		topology.EnsureAdaptPorts(r)
	}
	f := &Fabric{cfg: cfg, net: net, kernel: kernel}
	if kernel != nil {
		f.registerOps()
	}
	return f
}

// Network returns the underlying network.
func (f *Fabric) Network() *noc.Network { return f.net }

// SubNoCs returns the live subNoCs (do not mutate).
func (f *Fabric) SubNoCs() []*SubNoC { return f.subnocs }

// Allocate creates a subNoC on a free region and configures its initial
// topology immediately (initial placement needs no runtime protocol: the
// region carries no traffic yet).
func (f *Fabric) Allocate(app int, reg topology.Region, kind topology.Kind, mcTile noc.NodeID, extraMCs ...noc.NodeID) (*SubNoC, error) {
	w, h := f.net.Cfg.Width, f.net.Cfg.Height
	if reg.X < 0 || reg.Y < 0 || reg.X+reg.W > w || reg.Y+reg.H > h {
		return nil, fmt.Errorf("fabric: region %v outside %dx%d grid", reg, w, h)
	}
	for _, sn := range f.subnocs {
		if sn.Region.Overlaps(reg) {
			return nil, fmt.Errorf("fabric: region %v overlaps subNoC %d (%v)", reg, sn.ID, sn.Region)
		}
	}
	if !reg.Contains(noc.CoordOf(mcTile, w)) {
		return nil, fmt.Errorf("fabric: MC tile %d outside region %v", mcTile, reg)
	}
	sn := &SubNoC{ID: f.nextID, App: app, Region: reg, Kind: kind, MCTile: mcTile,
		MCTiles: append([]noc.NodeID{mcTile}, extraMCs...)}
	f.nextID++
	f.gen++
	f.configureRegion(sn, kind)
	f.subnocs = append(f.subnocs, sn)
	return sn, nil
}

// Release tears a subNoC down, freeing its tiles for reallocation. The
// region must be quiescent (the application has finished).
func (f *Fabric) Release(sn *SubNoC) error {
	if !f.regionQuiescent(sn.Region) {
		return fmt.Errorf("fabric: releasing subNoC %d with traffic in flight", sn.ID)
	}
	f.gen++
	for _, sh := range f.sharesTouching(sn.Region) {
		f.unshare(sn, sh)
	}
	f.teardownRegion(sn.Region)
	for i, s := range f.subnocs {
		if s == sn {
			f.subnocs = append(f.subnocs[:i], f.subnocs[i+1:]...)
			break
		}
	}
	return nil
}

// Lookup returns the subNoC owning a tile, or nil.
func (f *Fabric) Lookup(tile noc.NodeID) *SubNoC {
	c := noc.CoordOf(tile, f.net.Cfg.Width)
	for _, sn := range f.subnocs {
		if sn.Region.Contains(c) {
			return sn
		}
	}
	return nil
}

// configureRegion applies a topology to a region (the region's ports must
// be torn down or fresh) and installs the Ts table-setup stall.
func (f *Fabric) configureRegion(sn *SubNoC, kind topology.Kind) {
	switch kind {
	case topology.Mesh:
		topology.ConfigureMeshRegion(f.net, sn.Region)
	case topology.CMesh:
		topology.ConfigureCMeshRegion(f.net, sn.Region)
	case topology.Torus:
		topology.ConfigureTorusRegion(f.net, sn.Region)
	case topology.Tree:
		topology.ConfigureTreeRegion(f.net, sn.Region, sn.MCTile, sn.MCTiles)
	case topology.TorusTree:
		topology.ConfigureTorusTreeRegion(f.net, sn.Region, sn.MCTile, sn.MCTiles)
	default:
		panic(fmt.Sprintf("fabric: unknown topology kind %v", kind))
	}
	sn.Kind = kind
	now := sim.Cycle(0)
	if f.kernel != nil {
		now = f.kernel.Now()
	}
	for _, t := range sn.Region.Tiles(f.net.Cfg.Width) {
		r := f.net.Router(t)
		if !r.Disabled() {
			r.StallTables(now, f.cfg.SetupCycles)
		}
	}
}

// teardownRegion removes every intra-region channel, NI attachment, and
// routing table, and re-enables powered-off routers. The region must be
// quiescent.
func (f *Fabric) teardownRegion(reg topology.Region) {
	w := f.net.Cfg.Width
	inRegion := func(e noc.Endpoint) bool {
		switch e.Kind {
		case noc.EndRouter:
			return reg.Contains(noc.CoordOf(e.Router, w))
		case noc.EndNI:
			return reg.Contains(noc.CoordOf(e.NI, w))
		}
		return false
	}
	for _, t := range reg.Tiles(w) {
		f.net.DetachLocal(t)
	}
	for _, t := range reg.Tiles(w) {
		r := f.net.Router(t)
		for p := 0; p < r.NumPorts(); p++ {
			ch := r.OutputChannel(p)
			if ch == nil {
				continue
			}
			if !inRegion(ch.To) {
				// Boundary (MC-sharing) channels are torn down by
				// unshare, never here.
				panic(fmt.Sprintf("fabric: stray boundary channel %v->%v during teardown", ch.From, ch.To))
			}
			f.net.DisconnectOut(t, p)
		}
		r.SetDisabled(false)
		r.SetDateline(false)
		r.SetTable(noc.VNetRequest, nil)
		r.SetTable(noc.VNetReply, nil)
	}
}

// regionQuiescent reports whether no flit is buffered in the region's
// routers, in flight on its channels, or mid-stream at its NIs.
func (f *Fabric) regionQuiescent(reg topology.Region) bool {
	w := f.net.Cfg.Width
	for _, t := range reg.Tiles(w) {
		r := f.net.Router(t)
		if r.Occupancy() != 0 {
			return false
		}
		for p := 0; p < r.NumPorts(); p++ {
			if ch := r.OutputChannel(p); ch != nil && ch.Busy() {
				return false
			}
			if ch := r.InputChannel(p); ch != nil && ch.Busy() {
				return false
			}
		}
	}
	return true
}

// GateRegion blocks or unblocks new injections from every tile of a region.
func (f *Fabric) GateRegion(reg topology.Region, gated bool) {
	for _, t := range reg.Tiles(f.net.Cfg.Width) {
		f.net.NI(t).SetGated(gated)
	}
}
