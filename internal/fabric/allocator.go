package fabric

import (
	"fmt"

	"adaptnoc/internal/topology"
)

// Allocator places rectangular subNoC regions on the grid, first-fit in
// row-major order (the OS-level region allocation of Section II-C.1 —
// cache coloring and page placement keep an application's data inside its
// region; here only the geometric placement matters).
type Allocator struct {
	w, h int
	used []bool
}

// NewAllocator returns an allocator for a W×H grid.
func NewAllocator(w, h int) *Allocator {
	return &Allocator{w: w, h: h, used: make([]bool, w*h)}
}

// Place finds a free w×h rectangle, marks it used, and returns it.
func (a *Allocator) Place(w, h int) (topology.Region, error) {
	if w <= 0 || h <= 0 || w > a.w || h > a.h {
		return topology.Region{}, fmt.Errorf("fabric: cannot place %dx%d on %dx%d grid", w, h, a.w, a.h)
	}
	for y := 0; y+h <= a.h; y++ {
		for x := 0; x+w <= a.w; x++ {
			reg := topology.Region{X: x, Y: y, W: w, H: h}
			if a.fits(reg) {
				a.mark(reg, true)
				return reg, nil
			}
		}
	}
	return topology.Region{}, fmt.Errorf("fabric: no free %dx%d region", w, h)
}

// PlaceAt claims a specific rectangle.
func (a *Allocator) PlaceAt(reg topology.Region) error {
	if reg.X < 0 || reg.Y < 0 || reg.X+reg.W > a.w || reg.Y+reg.H > a.h {
		return fmt.Errorf("fabric: region %v outside %dx%d grid", reg, a.w, a.h)
	}
	if !a.fits(reg) {
		return fmt.Errorf("fabric: region %v not free", reg)
	}
	a.mark(reg, true)
	return nil
}

// Free releases a previously placed rectangle.
func (a *Allocator) Free(reg topology.Region) {
	a.mark(reg, false)
}

// FreeTiles returns the number of unallocated tiles.
func (a *Allocator) FreeTiles() int {
	n := 0
	for _, u := range a.used {
		if !u {
			n++
		}
	}
	return n
}

func (a *Allocator) fits(reg topology.Region) bool {
	for y := reg.Y; y < reg.Y+reg.H; y++ {
		for x := reg.X; x < reg.X+reg.W; x++ {
			if a.used[y*a.w+x] {
				return false
			}
		}
	}
	return true
}

func (a *Allocator) mark(reg topology.Region, v bool) {
	for y := reg.Y; y < reg.Y+reg.H; y++ {
		for x := reg.X; x < reg.X+reg.W; x++ {
			a.used[y*a.w+x] = v
		}
	}
}
