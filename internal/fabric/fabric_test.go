package fabric

import (
	"testing"

	"adaptnoc/internal/deadlock"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

func adaptConfig() noc.Config {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2 // Adapt-NoC area-equalized VC count (Section IV-A)
	cfg.InjectionBypass = true
	return cfg
}

// trafficSource keeps a region's tiles injecting uniform random traffic.
type trafficSource struct {
	net       *noc.Network
	tiles     []noc.NodeID
	rng       *sim.RNG
	rate      float64
	delivered int
	injected  int
}

func (ts *trafficSource) Tick(now sim.Cycle) {
	for _, src := range ts.tiles {
		if !ts.rng.Bernoulli(ts.rate) {
			continue
		}
		dst := ts.tiles[ts.rng.Intn(len(ts.tiles))]
		if dst == src {
			continue
		}
		class, vnet := noc.ClassCoherence, noc.VNetRequest
		if ts.rng.Bernoulli(0.5) {
			class, vnet = noc.ClassData, noc.VNetReply
		}
		ts.net.Enqueue(ts.net.NewPacket(src, dst, class, vnet, 0), now)
		ts.injected++
	}
}

func TestAllocateFourSubNoCsLikeFig1(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())

	// Four concurrently running applications with different topologies
	// (Fig. 1(b)).
	mk := func(app int, reg topology.Region, kind topology.Kind) *SubNoC {
		mc := noc.Coord{X: reg.X, Y: reg.Y}.ID(cfg.Width)
		sn, err := f.Allocate(app, reg, kind, mc)
		if err != nil {
			t.Fatalf("allocate app %d: %v", app, err)
		}
		return sn
	}
	subs := []*SubNoC{
		mk(0, topology.Region{X: 0, Y: 0, W: 4, H: 4}, topology.CMesh),
		mk(1, topology.Region{X: 4, Y: 0, W: 4, H: 4}, topology.Torus),
		mk(2, topology.Region{X: 0, Y: 4, W: 4, H: 4}, topology.Tree),
		mk(3, topology.Region{X: 4, Y: 4, W: 4, H: 4}, topology.Mesh),
	}

	if err := CheckWiring(net); err != nil {
		t.Fatal(err)
	}
	for _, sn := range subs {
		if err := deadlock.CheckAllPairs(net, f.RegionOf(sn)); err != nil {
			t.Fatalf("subNoC %d (%v): %v", sn.ID, sn.Kind, err)
		}
	}

	// Overlapping allocation must fail.
	if _, err := f.Allocate(9, topology.Region{X: 2, Y: 2, W: 4, H: 4}, topology.Mesh, 18); err == nil {
		t.Fatal("overlapping allocation succeeded")
	}

	// Concurrent traffic in all four subNoCs delivers completely and only
	// within its own region.
	var sources []*trafficSource
	delivered := 0
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { delivered++ })
	for i, sn := range subs {
		ts := &trafficSource{
			net: net, tiles: f.RegionOf(sn),
			rng: sim.NewRNG(uint64(100 + i)), rate: 0.02,
		}
		sources = append(sources, ts)
		k.Register(ts)
	}
	k.Run(20000)
	// Stop injecting, drain.
	for _, ts := range sources {
		ts.rate = 0
	}
	k.RunFor(20000)

	total := 0
	for _, ts := range sources {
		total += ts.injected
	}
	if delivered != total {
		t.Fatalf("delivered %d of %d packets", delivered, total)
	}
	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureUnderLoad(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())

	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	sn, err := f.Allocate(0, reg, topology.Mesh, 0)
	if err != nil {
		t.Fatal(err)
	}
	other, err := f.Allocate(1, topology.Region{X: 4, Y: 0, W: 4, H: 4}, topology.Mesh, 4)
	if err != nil {
		t.Fatal(err)
	}

	delivered := 0
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { delivered++ })
	ts := &trafficSource{net: net, tiles: f.RegionOf(sn), rng: sim.NewRNG(7), rate: 0.05}
	other1 := &trafficSource{net: net, tiles: f.RegionOf(other), rng: sim.NewRNG(8), rate: 0.05}
	k.Register(ts)
	k.Register(other1)
	k.Run(2000)

	// Cycle through every topology (including the Section II-B.4 combined
	// extension) while traffic keeps arriving.
	for _, kind := range []topology.Kind{topology.CMesh, topology.Torus, topology.Tree, topology.TorusTree, topology.Mesh} {
		if err := f.ReconfigureBlocking(sn, kind); err != nil {
			t.Fatalf("reconfigure to %v: %v", kind, err)
		}
		if sn.Kind != kind {
			t.Fatalf("kind = %v, want %v", sn.Kind, kind)
		}
		if err := CheckWiring(net); err != nil {
			t.Fatalf("after switch to %v: %v", kind, err)
		}
		if err := deadlock.CheckAllPairs(net, f.RegionOf(sn)); err != nil {
			t.Fatalf("after switch to %v: %v", kind, err)
		}
		k.RunFor(3000)
	}
	if sn.Reconfigs != 5 {
		t.Fatalf("Reconfigs = %d, want 5", sn.Reconfigs)
	}
	if sn.ReconfigCycles <= 0 {
		t.Fatal("no reconfiguration cycles accounted")
	}

	ts.rate, other1.rate = 0, 0
	k.RunFor(20000)
	if delivered != ts.injected+other1.injected {
		t.Fatalf("delivered %d of %d packets across reconfigurations",
			delivered, ts.injected+other1.injected)
	}
	// The untouched neighbour must never have been gated.
	for _, tile := range f.RegionOf(other) {
		if net.NI(tile).Gated() {
			t.Fatalf("neighbour subNoC tile %d gated by foreign reconfiguration", tile)
		}
	}
}

func TestMCSharingDeliversForeignTraffic(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())

	left, err := f.Allocate(0, topology.Region{X: 0, Y: 0, W: 4, H: 4}, topology.Mesh, 0)
	if err != nil {
		t.Fatal(err)
	}
	mcRight := noc.Coord{X: 4, Y: 0}.ID(cfg.Width)
	right, err := f.Allocate(1, topology.Region{X: 4, Y: 0, W: 4, H: 4}, topology.Mesh, mcRight)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ShareMC(left, mcRight); err != nil {
		t.Fatal(err)
	}
	if got := f.SharedMCs(left); len(got) != 1 || got[0] != mcRight {
		t.Fatalf("SharedMCs = %v, want [%d]", got, mcRight)
	}
	_ = right

	var deliveredPkts []*noc.Packet
	net.SetDeliverFunc(func(p *noc.Packet, _ sim.Cycle) { deliveredPkts = append(deliveredPkts, p) })

	// Requests from every left tile to the foreign MC, and replies back.
	want := 0
	for _, tile := range f.RegionOf(left) {
		if tile == mcRight {
			continue
		}
		net.Enqueue(net.NewPacket(tile, mcRight, noc.ClassCoherence, noc.VNetRequest, 0), k.Now())
		net.Enqueue(net.NewPacket(mcRight, tile, noc.ClassData, noc.VNetReply, 1), k.Now())
		want += 2
	}
	k.Run(5000)
	if len(deliveredPkts) != want {
		t.Fatalf("delivered %d of %d cross-subNoC packets", len(deliveredPkts), want)
	}

	// Sharing survives a reconfiguration of the requester.
	if err := f.ReconfigureBlocking(left, topology.Torus); err != nil {
		t.Fatal(err)
	}
	if got := f.SharedMCs(left); len(got) != 1 {
		t.Fatalf("share lost across reconfiguration: %v", got)
	}
	deliveredPkts = nil
	net.Enqueue(net.NewPacket(noc.NodeID(9), mcRight, noc.ClassCoherence, noc.VNetRequest, 0), k.Now())
	net.Enqueue(net.NewPacket(mcRight, noc.NodeID(9), noc.ClassData, noc.VNetReply, 1), k.Now())
	k.RunFor(5000)
	if len(deliveredPkts) != 2 {
		t.Fatalf("delivered %d of 2 packets after requester reconfiguration", len(deliveredPkts))
	}

	// And a reconfiguration of the owner.
	if err := f.ReconfigureBlocking(right, topology.CMesh); err != nil {
		t.Fatal(err)
	}
	if got := f.SharedMCs(left); len(got) != 1 {
		t.Fatalf("share lost across owner reconfiguration: %v", got)
	}
	deliveredPkts = nil
	net.Enqueue(net.NewPacket(noc.NodeID(9), mcRight, noc.ClassCoherence, noc.VNetRequest, 0), k.Now())
	k.RunFor(5000)
	if len(deliveredPkts) != 1 {
		t.Fatalf("request to shared MC lost after owner reconfiguration")
	}

	if err := net.CheckCreditInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseFreesRegionForReuse(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())

	reg := topology.Region{X: 0, Y: 0, W: 2, H: 4}
	sn, err := f.Allocate(0, reg, topology.CMesh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Release(sn); err != nil {
		t.Fatal(err)
	}
	if got := f.Lookup(0); got != nil {
		t.Fatalf("tile 0 still owned by subNoC %d", got.ID)
	}
	// Same tiles, different shape and topology.
	sn2, err := f.Allocate(1, topology.Region{X: 0, Y: 0, W: 4, H: 4}, topology.Tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := deadlock.CheckAllPairs(net, f.RegionOf(sn2)); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorFirstFit(t *testing.T) {
	a := NewAllocator(8, 8)
	r1, err := a.Place(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Place(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overlaps(r2) {
		t.Fatalf("overlapping placements %v, %v", r1, r2)
	}
	if _, err := a.Place(8, 8); err == nil {
		t.Fatal("oversized placement succeeded")
	}
	if got := a.FreeTiles(); got != 32 {
		t.Fatalf("FreeTiles = %d, want 32", got)
	}
	a.Free(r1)
	if got := a.FreeTiles(); got != 48 {
		t.Fatalf("FreeTiles after free = %d, want 48", got)
	}
	if err := a.PlaceAt(r1); err != nil {
		t.Fatal(err)
	}
	if err := a.PlaceAt(r1); err == nil {
		t.Fatal("double placement succeeded")
	}
}
