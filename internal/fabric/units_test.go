package fabric

import (
	"strings"
	"testing"
	"testing/quick"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

func TestAllocatorNeverOverlapsProperty(t *testing.T) {
	f := func(ws, hs []uint8) bool {
		a := NewAllocator(8, 8)
		var placed []topology.Region
		n := len(ws)
		if len(hs) < n {
			n = len(hs)
		}
		for i := 0; i < n && i < 12; i++ {
			w, h := int(ws[i]%5)+1, int(hs[i]%5)+1
			reg, err := a.Place(w, h)
			if err != nil {
				continue // grid full — fine
			}
			for _, p := range placed {
				if p.Overlaps(reg) {
					return false
				}
			}
			placed = append(placed, reg)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckWiringRejectsOverlap(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	for _, r := range net.Routers() {
		topology.EnsureAdaptPorts(r)
	}
	// Two overlapping east-going segments on row 0's forward wire:
	// [0,2] and [1,3].
	for _, id := range []noc.NodeID{1, 3} {
		r := net.Router(id)
		for r.NumPorts() < 11 {
			r.AddPort()
		}
	}
	net.Connect(noc.Endpoint{Kind: noc.EndRouter, Router: 0, Port: topology.PortAdaptEast},
		noc.Endpoint{Kind: noc.EndRouter, Router: 2, Port: topology.PortAdaptWest},
		noc.ChanAdaptable, 1, 2)
	net.Connect(noc.Endpoint{Kind: noc.EndRouter, Router: 1, Port: 9},
		noc.Endpoint{Kind: noc.EndRouter, Router: 3, Port: 10},
		noc.ChanAdaptable, 1, 2)
	err := CheckWiring(net)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping segments accepted: %v", err)
	}
}

func TestCheckWiringAllowsSharedEndpointsAndLayers(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	for _, r := range net.Routers() {
		topology.EnsureAdaptPorts(r)
	}
	// Chained segments sharing an endpoint (Fig. 3(b)) are legal.
	net.Connect(noc.Endpoint{Kind: noc.EndRouter, Router: 0, Port: topology.PortAdaptEast},
		noc.Endpoint{Kind: noc.EndRouter, Router: 2, Port: topology.PortAdaptWest},
		noc.ChanAdaptable, 1, 2)
	net.Connect(noc.Endpoint{Kind: noc.EndRouter, Router: 2, Port: topology.PortAdaptEast},
		noc.Endpoint{Kind: noc.EndRouter, Router: 4, Port: topology.PortAdaptWest},
		noc.ChanAdaptable, 1, 2)
	if err := CheckWiring(net); err != nil {
		t.Fatalf("chained segments rejected: %v", err)
	}
	// The same interval on the intermediate layer is a different wire.
	r1 := net.Router(1)
	for r1.NumPorts() < 10 {
		r1.AddPort()
	}
	r3 := net.Router(3)
	for r3.NumPorts() < 10 {
		r3.AddPort()
	}
	ch := net.Connect(noc.Endpoint{Kind: noc.EndRouter, Router: 1, Port: 9},
		noc.Endpoint{Kind: noc.EndRouter, Router: 3, Port: 9},
		noc.ChanAdaptable, 1, 2)
	ch.Intermediate = true
	if err := CheckWiring(net); err != nil {
		t.Fatalf("intermediate-layer segment rejected: %v", err)
	}
}

func TestSubNoCStateString(t *testing.T) {
	for s, want := range map[SubNoCState]string{
		StateActive: "active", StateNotifying: "notifying",
		StateDraining: "draining", StateSettingUp: "setting-up",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
}

func TestSwitchLatencyModel(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())
	// (M+N-2)*(Tr+Tl) + Ts = (4+4-2)*(2+1) + 14 = 32.
	if got := f.SwitchLatencyModel(topology.Region{W: 4, H: 4}); got != 32 {
		t.Fatalf("SwitchLatencyModel = %d, want 32", got)
	}
}

func TestAllocateRejectsBadArguments(t *testing.T) {
	cfg := adaptConfig()
	net := noc.NewNetwork(cfg)
	k := sim.NewKernel()
	k.Register(net)
	f := New(net, k, DefaultConfig())
	if _, err := f.Allocate(0, topology.Region{X: 6, Y: 0, W: 4, H: 4}, topology.Mesh, 6); err == nil {
		t.Fatal("off-grid region accepted")
	}
	if _, err := f.Allocate(0, topology.Region{W: 4, H: 4}, topology.Mesh, 63); err == nil {
		t.Fatal("MC outside region accepted")
	}
}
