package fabric

// Checkpoint support. The fabric's dynamic state is small — each subNoC's
// currently configured topology, its reconfiguration lifecycle state, and
// its counters — but restoring it is structural: the restored fabric
// replays teardown+configure+reshare per region so the network's wiring
// and routing tables are rebuilt to match the checkpoint before the
// network's own dynamic overlay (buffered flits, credits) is applied.
// In-flight reconfiguration protocol steps live in the kernel's event
// list as descriptor events and need nothing here.

import (
	"fmt"

	"adaptnoc/internal/snap"
	"adaptnoc/internal/topology"
)

// Snapshot writes the fabric's dynamic state.
func (f *Fabric) Snapshot(w *snap.Writer) {
	w.Int(f.nextID)
	w.Uvarint(uint64(len(f.subnocs)))
	for _, sn := range f.subnocs {
		w.Int(sn.ID)
		w.Int(int(sn.Kind))
		w.Int(int(sn.state))
		w.I64(sn.Reconfigs)
		w.I64(sn.ReconfigCycles)
	}
}

// Restore overlays a state written by Snapshot onto a freshly constructed
// fabric carrying the same subNoC allocation. Regions whose checkpointed
// topology differs from the freshly built one are physically switched
// (shares re-established), which rebuilds channels and routing tables
// deterministically; the caller then overlays the network's dynamic state
// on top.
func (f *Fabric) Restore(r *snap.Reader) error {
	nextID, err := r.Int()
	if err != nil {
		return err
	}
	n, err := r.Count(5)
	if err != nil {
		return err
	}
	if n != len(f.subnocs) {
		return fmt.Errorf("fabric: checkpoint has %d subNoCs, fabric has %d", n, len(f.subnocs))
	}
	f.nextID = nextID
	for _, sn := range f.subnocs {
		id, err := r.Int()
		if err != nil {
			return err
		}
		if id != sn.ID {
			return fmt.Errorf("fabric: checkpoint subNoC ID %d, fabric has %d", id, sn.ID)
		}
		kind, err := r.Int()
		if err != nil {
			return err
		}
		if kind < 0 || (topology.Kind(kind) >= topology.NumKinds && topology.Kind(kind) != topology.TorusTree) {
			return fmt.Errorf("fabric: subNoC %d has topology kind %d", id, kind)
		}
		state, err := r.Int()
		if err != nil {
			return err
		}
		if state < int(StateActive) || state > int(StateSettingUp) {
			return fmt.Errorf("fabric: subNoC %d has state %d", id, state)
		}
		reconfigs, err := r.I64()
		if err != nil {
			return err
		}
		cycles, err := r.I64()
		if err != nil {
			return err
		}
		if topology.Kind(kind) != sn.Kind {
			f.switchTopology(sn, topology.Kind(kind))
		}
		sn.state = SubNoCState(state)
		sn.Reconfigs = reconfigs
		sn.ReconfigCycles = cycles
	}
	return nil
}
