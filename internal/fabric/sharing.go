package fabric

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/topology"
)

// mcShare is one active memory-controller sharing arrangement
// (Section II-C.2, Fig. 5): the requester subNoC reaches the owner
// subNoC's MC through a single boundary crossing between adjacent
// peripheral routers. Only one crossing per share keeps the channel
// dependency graph acyclic (Section II-C.3).
type mcShare struct {
	requester *SubNoC
	owner     *SubNoC
	mcTile    noc.NodeID

	aTile, bTile noc.NodeID // crossing routers: a in requester, b in owner
	aPort, bPort int
}

// ShareMC lets a subNoC access a memory controller in an adjacent subNoC.
// It finds a free boundary crossing, wires the (otherwise unused) boundary
// link, and patches the routing tables on both sides: requests toward the
// foreign MC ride the requester's existing routes to the crossing router,
// cross, and then follow the owner's own MC routes; replies mirror the
// path. The share survives reconfigurations of either subNoC (it is
// re-established under the new topology, or dropped if no crossing fits).
func (f *Fabric) ShareMC(requester *SubNoC, mcTile noc.NodeID) error {
	owner := f.Lookup(mcTile)
	if owner == nil {
		return fmt.Errorf("fabric: MC tile %d is not in any subNoC", mcTile)
	}
	if owner == requester {
		return fmt.Errorf("fabric: MC tile %d already belongs to subNoC %d", mcTile, requester.ID)
	}
	for _, sh := range f.shares {
		if sh.requester == requester && sh.mcTile == mcTile {
			return fmt.Errorf("fabric: subNoC %d already shares MC %d", requester.ID, mcTile)
		}
	}
	return f.shareInternal(requester, mcTile, owner)
}

// shareInternal wires and routes a share, registering it on success.
func (f *Fabric) shareInternal(requester *SubNoC, mcTile noc.NodeID, owner *SubNoC) error {
	cr, ok := f.findCrossing(requester.Region, owner.Region)
	if !ok {
		return fmt.Errorf("fabric: no free boundary crossing between subNoC %d and %d",
			requester.ID, owner.ID)
	}
	aTile, bTile, aPort, bPort := cr.aTile, cr.bTile, cr.aPort, cr.bPort
	kind := noc.ChanMesh
	lat := f.net.Cfg.LinkLatency
	if cr.dist > 1 {
		// The crossing bridges powered-off routers on an adaptable-link
		// segment (cmesh boundaries).
		kind = noc.ChanAdaptable
		lat = f.net.Cfg.LongLinkLatency(cr.dist)
	}
	f.net.ConnectBidir(aTile, aPort, bTile, bPort, kind, lat, cr.dist)

	sh := &mcShare{
		requester: requester, owner: owner, mcTile: mcTile,
		aTile: aTile, bTile: bTile, aPort: aPort, bPort: bPort,
	}
	f.patchShareRoutes(sh)
	f.shares = append(f.shares, sh)
	return nil
}

// patchShareRoutes adds the foreign-destination entries on both sides.
func (f *Fabric) patchShareRoutes(sh *mcShare) {
	w := f.net.Cfg.Width

	// Requester side: route the foreign MC like the crossing tile, except
	// at the crossing router, which forwards over the boundary.
	for _, t := range sh.requester.Region.Tiles(w) {
		r := f.net.Router(t)
		if r.Disabled() {
			continue
		}
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			tbl := r.Table(v).Clone()
			if t == sh.aTile {
				tbl.Set(sh.mcTile, sh.aPort, noc.ClassKeep)
			} else {
				e, ok := tbl.Lookup(sh.aTile)
				if !ok {
					continue
				}
				tbl.Set(sh.mcTile, int(e.OutPort), e.Class)
			}
			r.SetTable(v, tbl)
		}
	}

	// Owner side: route every requester tile like the crossing tile, so
	// MC replies reach the boundary and cross.
	reqTiles := sh.requester.Region.Tiles(w)
	for _, t := range sh.owner.Region.Tiles(w) {
		r := f.net.Router(t)
		if r.Disabled() {
			continue
		}
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			tbl := r.Table(v).Clone()
			for _, rt := range reqTiles {
				if t == sh.bTile {
					tbl.Set(rt, sh.bPort, noc.ClassKeep)
					continue
				}
				e, ok := tbl.Lookup(sh.bTile)
				if !ok {
					continue
				}
				tbl.Set(rt, int(e.OutPort), e.Class)
			}
			r.SetTable(v, tbl)
		}
	}
}

// unshare removes the crossing channels and the foreign route entries.
func (f *Fabric) unshare(sn *SubNoC, sh *mcShare) {
	w := f.net.Cfg.Width
	f.net.DisconnectOut(sh.aTile, sh.aPort)
	f.net.DisconnectOut(sh.bTile, sh.bPort)
	for _, t := range sh.requester.Region.Tiles(w) {
		r := f.net.Router(t)
		if r.Disabled() {
			continue
		}
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			if tb := r.Table(v); tb != nil {
				tb.Unset(sh.mcTile)
			}
		}
	}
	reqTiles := sh.requester.Region.Tiles(w)
	for _, t := range sh.owner.Region.Tiles(w) {
		r := f.net.Router(t)
		if r.Disabled() {
			continue
		}
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			if tb := r.Table(v); tb != nil {
				for _, rt := range reqTiles {
					tb.Unset(rt)
				}
			}
		}
	}
	for i, s := range f.shares {
		if s == sh {
			f.shares = append(f.shares[:i], f.shares[i+1:]...)
			break
		}
	}
	_ = sn
}

// sharesQuiescent reports whether every share touching a subNoC's region
// has empty crossing channels and empty input buffers at both crossing
// routers — the crossing routers may lie outside the reconfiguring region,
// so regionQuiescent alone does not cover them.
func (f *Fabric) sharesQuiescent(sn *SubNoC) bool {
	for _, sh := range f.sharesTouching(sn.Region) {
		ra, rb := f.net.Router(sh.aTile), f.net.Router(sh.bTile)
		if !ra.PortEmpty(sh.aPort) || !rb.PortEmpty(sh.bPort) {
			return false
		}
		for _, ch := range []*noc.Channel{
			ra.OutputChannel(sh.aPort), rb.OutputChannel(sh.bPort),
		} {
			if ch != nil && ch.Busy() {
				return false
			}
		}
	}
	return true
}

// sharesTouching returns shares involving any tile of a region.
func (f *Fabric) sharesTouching(reg topology.Region) []*mcShare {
	var out []*mcShare
	for _, sh := range f.shares {
		if sh.requester.Region.Overlaps(reg) || sh.owner.Region.Overlaps(reg) {
			out = append(out, sh)
		}
	}
	return out
}

// SharedMCs returns the foreign MC tiles a subNoC currently reaches.
func (f *Fabric) SharedMCs(sn *SubNoC) []noc.NodeID {
	var out []noc.NodeID
	for _, sh := range f.shares {
		if sh.requester == sn {
			out = append(out, sh.mcTile)
		}
	}
	return out
}

// crossing is a candidate boundary connection.
type crossing struct {
	aTile, bTile noc.NodeID
	aPort, bPort int
	dist         int
}

// findCrossing scans the shared boundary for an aligned active router pair
// with free facing ports on both sides. A direct neighbour pair uses the
// (otherwise unused) boundary mesh link, falling back to the adaptable-link
// mux ports when the topology occupies the mesh port (torus wraparounds).
// When the peripheral routers are powered off (cmesh concentration), the
// crossing bridges them with an adaptable-link segment of up to three
// tiles, exactly as the intra-region cmesh segments do.
func (f *Fabric) findCrossing(a, b topology.Region) (crossing, bool) {
	w := f.net.Cfg.Width
	dirs := []struct {
		dx, dy         int
		mesh, meshOpp  int
		adapt, adaptOp int
	}{
		{1, 0, noc.PortEast, noc.PortWest, topology.PortAdaptEast, topology.PortAdaptWest},
		{-1, 0, noc.PortWest, noc.PortEast, topology.PortAdaptWest, topology.PortAdaptEast},
		{0, 1, noc.PortSouth, noc.PortNorth, topology.PortAdaptSouth, topology.PortAdaptNorth},
		{0, -1, noc.PortNorth, noc.PortSouth, topology.PortAdaptNorth, topology.PortAdaptSouth},
	}
	grid := topology.Region{W: w, H: f.net.Cfg.Height}
	for _, at := range a.Tiles(w) {
		ra := f.net.Router(at)
		if ra.Disabled() {
			continue
		}
		ac := noc.CoordOf(at, w)
		for _, dir := range dirs {
			// Walk outward over powered-off routers until an active one.
			for dist := 1; dist <= 3; dist++ {
				bc := noc.Coord{X: ac.X + dist*dir.dx, Y: ac.Y + dist*dir.dy}
				if !grid.Contains(bc) {
					break
				}
				bt := bc.ID(w)
				rb := f.net.Router(bt)
				if rb.Disabled() {
					continue // bridge over it
				}
				if !b.Contains(bc) {
					break // hit an active router outside the owner region
				}
				// Try every free (a-port, b-port) combination.
				for _, pa := range []int{dir.mesh, dir.adapt} {
					for _, pb := range []int{dir.meshOpp, dir.adaptOp} {
						if pa >= ra.NumPorts() || pb >= rb.NumPorts() {
							continue
						}
						if ra.OutputChannel(pa) == nil && ra.InputChannel(pa) == nil &&
							rb.OutputChannel(pb) == nil && rb.InputChannel(pb) == nil {
							return crossing{aTile: at, bTile: bt, aPort: pa, bPort: pb, dist: dist}, true
						}
					}
				}
				break // active pair found but no free ports; try next direction
			}
		}
	}
	return crossing{}, false
}
