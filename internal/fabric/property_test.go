package fabric

import (
	"testing"

	"adaptnoc/internal/deadlock"
	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// allKinds includes the extension topology.
var allKinds = []topology.Kind{
	topology.Mesh, topology.CMesh, topology.Torus, topology.Tree, topology.TorusTree,
}

// randomMosaic places 2-4 disjoint regions by recursive splitting of the
// 8x8 grid.
func randomMosaic(rng *sim.RNG) []topology.Region {
	regions := []topology.Region{{W: 8, H: 8}}
	splits := 1 + rng.Intn(2)
	for s := 0; s < splits; s++ {
		i := rng.Intn(len(regions))
		r := regions[i]
		if rng.Bernoulli(0.5) && r.W >= 4 {
			w := 2 * (1 + rng.Intn(r.W/2/2+1))
			if w >= r.W {
				w = r.W / 2
			}
			a := topology.Region{X: r.X, Y: r.Y, W: w, H: r.H}
			b := topology.Region{X: r.X + w, Y: r.Y, W: r.W - w, H: r.H}
			regions = append(regions[:i], append([]topology.Region{a, b}, regions[i+1:]...)...)
		} else if r.H >= 4 {
			h := 2 * (1 + rng.Intn(r.H/2/2+1))
			if h >= r.H {
				h = r.H / 2
			}
			a := topology.Region{X: r.X, Y: r.Y, W: r.W, H: h}
			b := topology.Region{X: r.X, Y: r.Y + h, W: r.W, H: r.H - h}
			regions = append(regions[:i], append([]topology.Region{a, b}, regions[i+1:]...)...)
		}
	}
	return regions
}

// TestRandomMosaicsAlwaysSafe is the fabric's main property test: random
// disjoint subNoC mosaics with random topologies and random runtime
// reconfiguration sequences under live traffic must (1) keep every routing
// state deadlock-free, (2) respect the adaptable-link wiring discipline,
// and (3) deliver every injected packet.
func TestRandomMosaicsAlwaysSafe(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := sim.NewRNG(uint64(9000 + trial))
		cfg := adaptConfig()
		net := noc.NewNetwork(cfg)
		k := sim.NewKernel()
		k.Register(net)
		f := New(net, k, DefaultConfig())

		regions := randomMosaic(rng)
		var subs []*SubNoC
		for i, reg := range regions {
			kind := allKinds[rng.Intn(len(allKinds))]
			mc := noc.Coord{X: reg.X + rng.Intn(reg.W), Y: reg.Y + rng.Intn(reg.H)}.ID(cfg.Width)
			sn, err := f.Allocate(i, reg, kind, mc)
			if err != nil {
				t.Fatalf("trial %d: allocate %v %v: %v", trial, reg, kind, err)
			}
			subs = append(subs, sn)
		}

		check := func(stage string) {
			if err := CheckWiring(net); err != nil {
				t.Fatalf("trial %d %s: %v", trial, stage, err)
			}
			for _, sn := range subs {
				if err := deadlock.CheckAllPairs(net, f.RegionOf(sn)); err != nil {
					t.Fatalf("trial %d %s subNoC %d (%v): %v", trial, stage, sn.ID, sn.Kind, err)
				}
			}
		}
		check("initial")

		delivered := 0
		net.SetDeliverFunc(func(*noc.Packet, sim.Cycle) { delivered++ })
		var sources []*trafficSource
		for i, sn := range subs {
			ts := &trafficSource{net: net, tiles: f.RegionOf(sn),
				rng: sim.NewRNG(uint64(7000 + trial*10 + i)), rate: 0.01}
			sources = append(sources, ts)
			k.Register(ts)
		}

		// Random reconfiguration sequence under load.
		for step := 0; step < 3; step++ {
			k.RunFor(3000)
			sn := subs[rng.Intn(len(subs))]
			kind := allKinds[rng.Intn(len(allKinds))]
			if kind == sn.Kind {
				continue
			}
			if err := f.ReconfigureBlocking(sn, kind); err != nil {
				t.Fatalf("trial %d: reconfigure %d -> %v: %v", trial, sn.ID, kind, err)
			}
			check("after reconfigure")
		}

		for _, ts := range sources {
			ts.rate = 0
		}
		k.RunFor(30000)
		total := 0
		for _, ts := range sources {
			total += ts.injected
		}
		if delivered != total {
			t.Fatalf("trial %d: delivered %d of %d packets", trial, delivered, total)
		}
		if err := net.CheckCreditInvariant(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
