package fabric

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// Reconfigure switches a subNoC to a new topology at runtime using the
// staged protocol of Section II-C.1:
//
//  1. Notification wave — (M+N−2)×(Tr+Tl) cycles for the configuration
//     message to reach every router of the subNoC.
//  2. Drain — new packet streams are gated at the region's NIs while
//     in-flight flits complete under the old routing algorithm. (The
//     paper's Lysne-style staging adds R_mesh before removing R_old so
//     that the network is never unroutable; our drain achieves the same
//     safety with the same cost order, charged as gated-injection cycles.
//     Queued packets are never dropped — they wait at the NI and their
//     wait is visible as queuing latency.)
//  3. Setup — links are re-muxed, adaptable-link segments re-programmed,
//     NI attachments re-clustered, new tables installed; route computation
//     stalls for the Ts=14-cycle connection-setup window.
//  4. Injection reopens.
//
// Reconfigure is asynchronous: it returns immediately and done (optional)
// runs when the subNoC is active again. A subNoC mid-reconfiguration
// rejects further Reconfigure calls.
func (f *Fabric) Reconfigure(sn *SubNoC, kind topology.Kind, done func()) error {
	if f.kernel == nil {
		return fmt.Errorf("fabric: runtime reconfiguration needs a kernel")
	}
	if sn.state != StateActive {
		return fmt.Errorf("fabric: subNoC %d is %v, cannot reconfigure", sn.ID, sn.state)
	}
	if kind == sn.Kind {
		if done != nil {
			done()
		}
		return nil
	}
	sn.state = StateNotifying
	sn.Reconfigs++
	wave := f.notificationWave(sn.Region)
	f.kernel.After(wave, func(now sim.Cycle) {
		f.beginDrain(sn, kind, now, done)
	})
	return nil
}

// notificationWave returns the cycles for the reconfiguration command to
// reach the farthest router of the region: (M+N−2)×(Tr+Tl).
func (f *Fabric) notificationWave(reg topology.Region) sim.Cycle {
	hops := reg.W + reg.H - 2
	if hops < 1 {
		hops = 1
	}
	return sim.Cycle(hops * (f.net.Cfg.RouterLatency + f.net.Cfg.LinkLatency))
}

// beginDrain gates injection and polls for quiescence.
func (f *Fabric) beginDrain(sn *SubNoC, kind topology.Kind, start sim.Cycle, done func()) {
	sn.state = StateDraining
	f.GateRegion(sn.Region, true)
	deadline := start + f.cfg.DrainTimeout
	var poll func(now sim.Cycle)
	poll = func(now sim.Cycle) {
		if !f.regionQuiescent(sn.Region) || !f.sharesQuiescent(sn) {
			if now >= deadline {
				panic(fmt.Sprintf("fabric: subNoC %d failed to drain within %d cycles",
					sn.ID, f.cfg.DrainTimeout))
			}
			f.kernel.After(1, poll)
			return
		}
		f.performSwitch(sn, kind, now, start, done)
	}
	f.kernel.After(1, poll)
}

// performSwitch executes the physical reconfiguration and schedules the
// injection reopening after the Ts setup window.
func (f *Fabric) performSwitch(sn *SubNoC, kind topology.Kind, now, gatedSince sim.Cycle, done func()) {
	sn.state = StateSettingUp

	// Shares touching this region (as requester or owner) are torn down
	// with it and re-established under the new topology in the same cycle,
	// so foreign-destination packets elsewhere never observe a routing
	// hole. A share that cannot be re-established would strand queued
	// foreign-MC traffic, so it is a hard error — findCrossing is designed
	// to succeed for every topology pair (bridging powered-off routers).
	shares := f.sharesTouching(sn.Region)
	for _, sh := range shares {
		f.unshare(sn, sh)
	}
	f.teardownRegion(sn.Region)
	f.configureRegion(sn, kind)
	for _, sh := range shares {
		if err := f.shareInternal(sh.requester, sh.mcTile, sh.owner); err != nil {
			panic(fmt.Sprintf("fabric: cannot re-establish MC share after switching subNoC %d to %v: %v",
				sn.ID, kind, err))
		}
	}

	f.kernel.After(sim.Cycle(f.cfg.SetupCycles), func(end sim.Cycle) {
		f.GateRegion(sn.Region, false)
		sn.state = StateActive
		sn.ReconfigCycles += int64(end - gatedSince)
		if done != nil {
			done()
		}
	})
}

// ReconfigureBlocking runs a reconfiguration to completion by stepping the
// kernel (other subNoCs keep running normally); a convenience for tests,
// examples, and the epoch controller.
func (f *Fabric) ReconfigureBlocking(sn *SubNoC, kind topology.Kind) error {
	doneFlag := false
	if err := f.Reconfigure(sn, kind, func() { doneFlag = true }); err != nil {
		return err
	}
	guard := f.kernel.Now() + 4*f.cfg.DrainTimeout
	for !doneFlag && f.kernel.Now() < guard {
		f.kernel.Step()
	}
	if !doneFlag {
		return fmt.Errorf("fabric: reconfiguration of subNoC %d did not complete", sn.ID)
	}
	return nil
}

// SwitchLatencyModel returns the fixed (traffic-independent) portion of a
// reconfiguration's latency in cycles — the notification wave plus Ts —
// used by the overhead analysis (Section V-B).
func (f *Fabric) SwitchLatencyModel(reg topology.Region) sim.Cycle {
	return f.notificationWave(reg) + sim.Cycle(f.cfg.SetupCycles)
}

// RegionOf exposes a subNoC's region tiles for observers.
func (f *Fabric) RegionOf(sn *SubNoC) []noc.NodeID {
	return sn.Region.Tiles(f.net.Cfg.Width)
}
