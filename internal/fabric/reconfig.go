package fabric

import (
	"fmt"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// Reconfigure switches a subNoC to a new topology at runtime using the
// staged protocol of Section II-C.1:
//
//  1. Notification wave — (M+N−2)×(Tr+Tl) cycles for the configuration
//     message to reach every router of the subNoC.
//  2. Drain — new packet streams are gated at the region's NIs while
//     in-flight flits complete under the old routing algorithm. (The
//     paper's Lysne-style staging adds R_mesh before removing R_old so
//     that the network is never unroutable; our drain achieves the same
//     safety with the same cost order, charged as gated-injection cycles.
//     Queued packets are never dropped — they wait at the NI and their
//     wait is visible as queuing latency.)
//  3. Setup — links are re-muxed, adaptable-link segments re-programmed,
//     NI attachments re-clustered, new tables installed; route computation
//     stalls for the Ts=14-cycle connection-setup window.
//  4. Injection reopens.
//
// Reconfigure is asynchronous: it returns immediately and done (optional)
// runs when the subNoC is active again. A subNoC mid-reconfiguration
// rejects further Reconfigure calls.
func (f *Fabric) Reconfigure(sn *SubNoC, kind topology.Kind, done func()) error {
	if f.kernel == nil {
		return fmt.Errorf("fabric: runtime reconfiguration needs a kernel")
	}
	if f.frozen {
		// A frozen fabric (fault engine owns the wiring) turns topology
		// switches into silent no-ops: the epoch controller keeps running
		// and must not treat a fault-degraded chip as a fatal error.
		if done != nil {
			done()
		}
		return nil
	}
	if sn.state != StateActive {
		return fmt.Errorf("fabric: subNoC %d is %v, cannot reconfigure", sn.ID, sn.state)
	}
	if kind == sn.Kind {
		if done != nil {
			done()
		}
		return nil
	}
	sn.state = StateNotifying
	sn.Reconfigs++
	f.gen++
	wave := f.notificationWave(sn.Region)
	if done == nil {
		// The normal (controller) path schedules descriptor events, so a
		// checkpoint can capture a reconfiguration mid-protocol and a
		// restored kernel resumes it.
		f.kernel.AfterOp(wave, opReconfigDrain, int64(sn.ID), int64(kind), 0)
	} else {
		// A completion callback cannot be serialized; this path keeps the
		// closure form (ReconfigureBlocking, tests) and a checkpoint taken
		// mid-protocol reports the pending closure as unserializable.
		f.kernel.After(wave, func(now sim.Cycle) {
			f.beginDrain(sn, kind, now, done)
		})
	}
	return nil
}

// Kernel operation IDs owned by this package (range 200-299).
const (
	// opReconfigDrain gates subNoC args[0] and starts polling for
	// quiescence before switching to topology args[1].
	opReconfigDrain sim.OpID = 200 + iota
	// opReconfigPoll re-checks quiescence of subNoC args[0] for a switch
	// to args[1]; args[2] is the drain start cycle (deadline anchor).
	opReconfigPoll
	// opReconfigOpen ends the Ts setup window of subNoC args[0]; args[1]
	// is the cycle injection gating began.
	opReconfigOpen
)

// registerOps binds the reconfiguration protocol's descriptor events.
func (f *Fabric) registerOps() {
	f.kernel.RegisterOp(opReconfigDrain, func(now sim.Cycle, args [3]int64) {
		f.beginDrain(f.subnocByID(int(args[0])), topology.Kind(args[1]), now, nil)
	})
	f.kernel.RegisterOp(opReconfigPoll, func(now sim.Cycle, args [3]int64) {
		f.pollDrain(f.subnocByID(int(args[0])), topology.Kind(args[1]), sim.Cycle(args[2]), now)
	})
	f.kernel.RegisterOp(opReconfigOpen, func(now sim.Cycle, args [3]int64) {
		f.openRegion(f.subnocByID(int(args[0])), sim.Cycle(args[1]), now)
	})
}

// subnocByID resolves an ID carried by a descriptor event.
func (f *Fabric) subnocByID(id int) *SubNoC {
	for _, sn := range f.subnocs {
		if sn.ID == id {
			return sn
		}
	}
	panic(fmt.Sprintf("fabric: unknown subNoC %d", id))
}

// notificationWave returns the cycles for the reconfiguration command to
// reach the farthest router of the region: (M+N−2)×(Tr+Tl).
func (f *Fabric) notificationWave(reg topology.Region) sim.Cycle {
	hops := reg.W + reg.H - 2
	if hops < 1 {
		hops = 1
	}
	return sim.Cycle(hops * (f.net.Cfg.RouterLatency + f.net.Cfg.LinkLatency))
}

// beginDrain gates injection and polls for quiescence.
func (f *Fabric) beginDrain(sn *SubNoC, kind topology.Kind, start sim.Cycle, done func()) {
	sn.state = StateDraining
	f.gen++
	f.GateRegion(sn.Region, true)
	if done == nil {
		f.kernel.AfterOp(1, opReconfigPoll, int64(sn.ID), int64(kind), int64(start))
		return
	}
	var poll func(now sim.Cycle)
	poll = func(now sim.Cycle) {
		if !f.drainComplete(sn, start, now) {
			f.kernel.After(1, poll)
			return
		}
		f.performSwitch(sn, kind, now, start, done)
	}
	f.kernel.After(1, poll)
}

// pollDrain is the descriptor-event form of the drain poll.
func (f *Fabric) pollDrain(sn *SubNoC, kind topology.Kind, start, now sim.Cycle) {
	if !f.drainComplete(sn, start, now) {
		f.kernel.AfterOp(1, opReconfigPoll, int64(sn.ID), int64(kind), int64(start))
		return
	}
	f.performSwitch(sn, kind, now, start, nil)
}

// drainComplete reports quiescence, panicking past the drain deadline.
func (f *Fabric) drainComplete(sn *SubNoC, start, now sim.Cycle) bool {
	if f.regionQuiescent(sn.Region) && f.sharesQuiescent(sn) {
		return true
	}
	if now >= start+f.cfg.DrainTimeout {
		panic(fmt.Sprintf("fabric: subNoC %d failed to drain within %d cycles",
			sn.ID, f.cfg.DrainTimeout))
	}
	return false
}

// performSwitch executes the physical reconfiguration and schedules the
// injection reopening after the Ts setup window.
func (f *Fabric) performSwitch(sn *SubNoC, kind topology.Kind, now, gatedSince sim.Cycle, done func()) {
	sn.state = StateSettingUp
	f.gen++
	f.switchTopology(sn, kind)
	if done == nil {
		f.kernel.AfterOp(sim.Cycle(f.cfg.SetupCycles), opReconfigOpen, int64(sn.ID), int64(gatedSince), 0)
		return
	}
	f.kernel.After(sim.Cycle(f.cfg.SetupCycles), func(end sim.Cycle) {
		f.openRegion(sn, gatedSince, end)
		done()
	})
}

// switchTopology is the physical part of a switch: shares touching this
// region (as requester or owner) are torn down with it and re-established
// under the new topology in the same cycle, so foreign-destination packets
// elsewhere never observe a routing hole. A share that cannot be
// re-established would strand queued foreign-MC traffic, so it is a hard
// error — findCrossing is designed to succeed for every topology pair
// (bridging powered-off routers). Checkpoint restore reuses this to replay
// a region's current topology onto a freshly built network.
func (f *Fabric) switchTopology(sn *SubNoC, kind topology.Kind) {
	shares := f.sharesTouching(sn.Region)
	for _, sh := range shares {
		f.unshare(sn, sh)
	}
	f.teardownRegion(sn.Region)
	f.configureRegion(sn, kind)
	for _, sh := range shares {
		if err := f.shareInternal(sh.requester, sh.mcTile, sh.owner); err != nil {
			panic(fmt.Sprintf("fabric: cannot re-establish MC share after switching subNoC %d to %v: %v",
				sn.ID, kind, err))
		}
	}
}

// openRegion ends the setup window: injection reopens and the gated time
// is charged to the subNoC.
func (f *Fabric) openRegion(sn *SubNoC, gatedSince, end sim.Cycle) {
	f.GateRegion(sn.Region, false)
	sn.state = StateActive
	sn.ReconfigCycles += int64(end - gatedSince)
	f.gen++
}

// ReconfigureBlocking runs a reconfiguration to completion by stepping the
// kernel (other subNoCs keep running normally); a convenience for tests,
// examples, and the epoch controller.
func (f *Fabric) ReconfigureBlocking(sn *SubNoC, kind topology.Kind) error {
	doneFlag := false
	if err := f.Reconfigure(sn, kind, func() { doneFlag = true }); err != nil {
		return err
	}
	guard := f.kernel.Now() + 4*f.cfg.DrainTimeout
	for !doneFlag && f.kernel.Now() < guard {
		f.kernel.Step()
	}
	if !doneFlag {
		return fmt.Errorf("fabric: reconfiguration of subNoC %d did not complete", sn.ID)
	}
	return nil
}

// SwitchLatencyModel returns the fixed (traffic-independent) portion of a
// reconfiguration's latency in cycles — the notification wave plus Ts —
// used by the overhead analysis (Section V-B).
func (f *Fabric) SwitchLatencyModel(reg topology.Region) sim.Cycle {
	return f.notificationWave(reg) + sim.Cycle(f.cfg.SetupCycles)
}

// RegionOf exposes a subNoC's region tiles for observers.
func (f *Fabric) RegionOf(sn *SubNoC) []noc.NodeID {
	return sn.Region.Tiles(f.net.Cfg.Width)
}
