// Package runner is the worker-pool fan-out layer for independent
// simulations. Every experiment in internal/exp is dozens of fully
// independent adaptnoc.NewSim runs; runner.Map executes such a job list
// across GOMAXPROCS workers while keeping the observable behaviour of a
// serial loop:
//
//   - results come back in job order, so tables built from them are
//     byte-identical to a serial run;
//   - each job derives its own seed/config before submission (see Seeds),
//     so no generator state is shared between workers;
//   - a panic inside a worker is captured and converted into that job's
//     error instead of tearing down the process;
//   - the first failing job cancels the context handed to the remaining
//     jobs, and unstarted jobs are skipped.
//
// Determinism is the contract: Map(jobs, w) with parallelism 1 and
// parallelism N produce identical result slices for deterministic
// workers, because scheduling only decides *when* a job runs, never what
// it computes.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"adaptnoc/internal/sim"
)

// Parallelism resolves a requested parallelism level: values <= 0 mean
// "one worker per available CPU" (GOMAXPROCS).
func Parallelism(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs worker over every job with at most parallelism concurrent
// workers (<= 0 selects GOMAXPROCS) and returns the results in job order.
//
// The first job error (lowest job index among failures) is returned and
// cancels the context passed to still-running workers; jobs that have not
// started by then are skipped and keep their zero-value result. A worker
// panic is captured with its stack and reported as that job's error.
func Map[J, R any](ctx context.Context, parallelism int, jobs []J, worker func(ctx context.Context, job J) (R, error)) ([]R, error) {
	results := make([]R, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	errs := make([]error, len(jobs))
	p := Parallelism(parallelism)
	if p > len(jobs) {
		p = len(jobs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	if p == 1 {
		// Inline serial path: no goroutines, same early-stop semantics.
		for i := range jobs {
			if ctx.Err() != nil {
				break
			}
			results[i], errs[i] = One(ctx, jobs[i], worker)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(jobs) || ctx.Err() != nil {
						return
					}
					results[i], errs[i] = One(ctx, jobs[i], worker)
					if errs[i] != nil {
						cancel() // first failure stops the fleet
					}
				}
			}()
		}
		wg.Wait()
	}

	// Report the failure with the smallest job index — deterministic no
	// matter which worker hit it first.
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	// No job failed, so a cancelled context can only mean the caller's
	// parent context was cancelled while jobs were still queued.
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// One executes a single job with the pool's panic-capture semantics: a
// panic inside the worker is converted into the job's error (with its
// stack) instead of tearing down the process. Long-lived worker pools that
// pull jobs from a queue instead of a slice (internal/serve) reuse it so
// one poisoned job cannot take the daemon down.
func One[J, R any](ctx context.Context, job J, worker func(ctx context.Context, job J) (R, error)) (r R, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("runner: job panicked: %v\n%s", p, debug.Stack())
		}
	}()
	return worker(ctx, job)
}

// Seeds derives n independent per-job seeds from base using the sim RNG's
// splitting, so that parallel jobs never share generator state and the
// seed list is a pure function of (base, n) regardless of scheduling.
func Seeds(base uint64, n int) []uint64 {
	root := sim.NewRNG(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = root.Split(uint64(i)).Uint64()
	}
	return out
}
