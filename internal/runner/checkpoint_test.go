package runner

import (
	"context"
	"errors"
	"testing"

	"adaptnoc/internal/sim"
)

func TestCheckpointedSlices(t *testing.T) {
	var steps []sim.Cycle
	saves := 0
	err := Checkpointed(context.Background(), 10, 4,
		func(_ context.Context, slice sim.Cycle) error {
			steps = append(steps, slice)
			return nil
		},
		nil,
		func() error { saves++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []sim.Cycle{4, 4, 2}
	if len(steps) != len(want) {
		t.Fatalf("steps %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("steps %v, want %v", steps, want)
		}
	}
	if saves != 3 {
		t.Fatalf("saved %d times, want one per slice (3)", saves)
	}
}

func TestCheckpointedSingleSlice(t *testing.T) {
	for _, interval := range []sim.Cycle{0, -5, 100} {
		steps, saves := 0, 0
		err := Checkpointed(context.Background(), 10, interval,
			func(_ context.Context, slice sim.Cycle) error {
				if slice != 10 {
					t.Fatalf("interval %d: slice %d, want 10", interval, slice)
				}
				steps++
				return nil
			},
			nil,
			func() error { saves++; return nil })
		if err != nil || steps != 1 || saves != 1 {
			t.Fatalf("interval %d: err=%v steps=%d saves=%d", interval, err, steps, saves)
		}
	}
}

func TestCheckpointedDoneStopsEarly(t *testing.T) {
	steps, saves := 0, 0
	err := Checkpointed(context.Background(), 100, 10,
		func(_ context.Context, _ sim.Cycle) error { steps++; return nil },
		func() bool { return steps >= 3 },
		func() error { saves++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("ran %d slices after done, want 3", steps)
	}
	// The save after the third slice is the final one; done() is checked
	// before stepping again, so every completed slice is persisted.
	if saves != 3 {
		t.Fatalf("saved %d times, want 3", saves)
	}
}

func TestCheckpointedPropagatesErrors(t *testing.T) {
	stepErr := errors.New("step failed")
	err := Checkpointed(context.Background(), 10, 4,
		func(_ context.Context, _ sim.Cycle) error { return stepErr },
		nil,
		func() error { t.Fatal("save ran after step error"); return nil })
	if !errors.Is(err, stepErr) {
		t.Fatalf("got %v, want step error", err)
	}

	saveErr := errors.New("save failed")
	err = Checkpointed(context.Background(), 10, 4,
		func(_ context.Context, _ sim.Cycle) error { return nil },
		nil,
		func() error { return saveErr })
	if !errors.Is(err, saveErr) {
		t.Fatalf("got %v, want save error", err)
	}
}
