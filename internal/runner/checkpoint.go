package runner

// Periodic auto-checkpoint pacing. The runner owns the *when* of
// checkpointing — slice a long run into intervals and save at each
// boundary — while the layers own the *how* (adaptnoc.Sim serializes
// itself). Keeping the policy here lets every driver (CLI runs, the
// experiment fan-out, the serving daemon) share one loop with identical
// semantics: the simulated work is sliced, never changed, so a
// checkpointed run computes exactly what an unsliced run computes.

import (
	"context"

	"adaptnoc/internal/sim"
)

// Checkpointed advances a stepwise computation to total cycles in
// interval-sized slices, invoking save after every completed slice
// (including the final one, so the file always reflects the last
// boundary). interval <= 0 runs the whole window as one slice with a
// single save at the end.
//
// step(ctx, slice) must advance the computation by at most slice cycles;
// done (optional) reports early completion — e.g. every budgeted
// application finished — which stops the loop after a final save. A step
// or save error aborts the loop and is returned as-is.
func Checkpointed(ctx context.Context, total, interval sim.Cycle,
	step func(ctx context.Context, slice sim.Cycle) error,
	done func() bool,
	save func() error) error {
	if interval <= 0 || interval > total {
		interval = total
	}
	for advanced := sim.Cycle(0); advanced < total; {
		if done != nil && done() {
			break
		}
		slice := interval
		if rem := total - advanced; rem < slice {
			slice = rem
		}
		if err := step(ctx, slice); err != nil {
			return err
		}
		advanced += slice
		if err := save(); err != nil {
			return err
		}
	}
	return nil
}
