package runner_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/runner"
)

func TestMapOrdersResults(t *testing.T) {
	jobs := make([]int, 64)
	for i := range jobs {
		jobs[i] = i
	}
	for _, p := range []int{1, 2, 4, 0} {
		got, err := runner.Map(context.Background(), p, jobs, func(_ context.Context, j int) (int, error) {
			return j * j, nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d: result[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapIdenticalAcrossParallelism(t *testing.T) {
	jobs := []string{"a", "bb", "ccc", "dddd"}
	worker := func(_ context.Context, j string) (string, error) {
		return strings.ToUpper(j), nil
	}
	serial, err := runner.Map(context.Background(), 1, jobs, worker)
	if err != nil {
		t.Fatal(err)
	}
	par, err := runner.Map(context.Background(), 4, jobs, worker)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("serial %v != parallel %v", serial, par)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("job 2 failed")
	_, err := runner.Map(context.Background(), 4, jobs, func(_ context.Context, j int) (int, error) {
		if j == 2 {
			return 0, wantErr
		}
		if j == 5 {
			return 0, fmt.Errorf("job 5 failed")
		}
		return j, nil
	})
	if err == nil {
		t.Fatal("no error reported")
	}
	if !errors.Is(err, wantErr) && err.Error() != "job 5 failed" {
		t.Fatalf("unexpected error %v", err)
	}
	// With serial execution the error is deterministic: job 2 fails first
	// and job 5 never runs.
	_, err = runner.Map(context.Background(), 1, jobs, func(_ context.Context, j int) (int, error) {
		if j == 2 {
			return 0, wantErr
		}
		if j >= 3 {
			t.Errorf("job %d ran after failure", j)
		}
		return j, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("serial error %v, want %v", err, wantErr)
	}
}

func TestMapCancelsOnFirstFailure(t *testing.T) {
	var started atomic.Int64
	jobs := make([]int, 128)
	for i := range jobs {
		jobs[i] = i
	}
	_, err := runner.Map(context.Background(), 2, jobs, func(ctx context.Context, j int) (int, error) {
		started.Add(1)
		if j == 0 {
			return 0, errors.New("boom")
		}
		<-ctx.Done() // later jobs block until cancellation propagates
		return j, nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
	if n := started.Load(); n == int64(len(jobs)) {
		t.Fatalf("all %d jobs started despite early failure", n)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	jobs := []int{0, 1}
	_, err := runner.Map(context.Background(), 2, jobs, func(_ context.Context, j int) (int, error) {
		if j == 1 {
			panic("kaboom")
		}
		return j, nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestMapHonoursParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := runner.Map(ctx, 4, []int{1, 2, 3}, func(_ context.Context, j int) (int, error) {
		t.Error("job ran under a cancelled context")
		return j, nil
	})
	if err == nil {
		t.Fatal("cancelled context not reported")
	}
	if len(res) != 3 {
		t.Fatalf("result slice length %d", len(res))
	}
}

func TestSeedsAreStableAndDistinct(t *testing.T) {
	a := runner.Seeds(7, 16)
	b := runner.Seeds(7, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds is not deterministic")
	}
	seen := map[uint64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	if reflect.DeepEqual(runner.Seeds(8, 16), a) {
		t.Fatal("different bases produced identical seed lists")
	}
}

// TestParallelSimsAreIndependent drives whole simulations through the
// pool — the workload the package exists for — and checks both result
// determinism and (under -race) the absence of cross-sim data races.
func TestParallelSimsAreIndependent(t *testing.T) {
	run := func(parallelism int) []string {
		seeds := runner.Seeds(2021, 4)
		out, err := runner.Map(context.Background(), parallelism, seeds, func(_ context.Context, seed uint64) (string, error) {
			s, err := adaptnoc.NewSim(adaptnoc.Config{
				Design: adaptnoc.DesignAdaptNoC,
				Apps: []adaptnoc.AppSpec{{
					Profile: "bfs",
					Region:  adaptnoc.Region{W: 4, H: 4},
					Static:  adaptnoc.CMesh,
				}},
				Seed:        seed,
				EpochCycles: 2000,
				RL:          adaptnoc.RLOptions{Pretrained: adaptnoc.DefaultPolicy()},
			})
			if err != nil {
				return "", err
			}
			s.Run(6000)
			return s.Results().String(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel runs diverged from serial:\nserial:   %v\nparallel: %v", serial, parallel)
	}
	for i, s := range serial {
		for j := 0; j < i; j++ {
			if s == serial[j] {
				t.Fatalf("seeds %d and %d produced identical runs", j, i)
			}
		}
	}
}
