// Package train is the offline DQN training harness of Section III-E: a
// single agent (prediction + target network + experience replay) gathers
// experience across training episodes that span different subNoC sizes
// (2x4 … 8x8) and a wide range of application phases, exactly as the paper
// prescribes for robustness. The trained prediction network is what the
// deployed per-subNoC RL controllers run (cmd/adaptnoc-train writes it as
// JSON; internal/rl embeds a copy as the default policy).
package train

import (
	"fmt"
	"io"
	"os"

	"adaptnoc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/traffic"
)

// Episode is one training run: an application alone in a region, or the
// full mixed workload when Mixed is set.
type Episode struct {
	Profile string
	Region  adaptnoc.Region
	Mixed   bool
}

// Curriculum returns the paper's training configurations: network sizes
// 2x4, 4x4, 4x6, 4x8, and 8x8, each paired with applications whose
// class matches the paper's mapping (CPU codes on small regions, GPU codes
// on large ones, both on the middle size).
func Curriculum() []Episode {
	var eps []Episode
	add := func(reg adaptnoc.Region, names ...string) {
		for _, n := range names {
			eps = append(eps, Episode{Profile: n, Region: reg})
		}
	}
	add(adaptnoc.Region{W: 2, H: 4}, "blackscholes", "canneal", "x264")
	add(adaptnoc.Region{W: 4, H: 4}, "swaptions", "ferret", "fluidanimate", "bodytrack")
	add(adaptnoc.Region{W: 4, H: 6}, "canneal", "nw", "hotspot")
	add(adaptnoc.Region{W: 4, H: 8}, "kmeans", "bfs", "backprop", "gaussian")
	add(adaptnoc.Region{W: 8, H: 8}, "bfs", "heartwall", "kmeans")
	// Concurrent-execution episodes: three subNoCs at once, shared agent.
	eps = append(eps,
		Episode{Mixed: true, Profile: "bfs"},
		Episode{Mixed: true, Profile: "kmeans"},
	)
	return eps
}

// Options tune the training run.
type Options struct {
	Rounds        int   // passes over the curriculum
	EpisodeCycles int64 // simulated cycles per episode
	EpochCycles   int   // control epoch during training
	Seed          uint64
	// EpsilonStart/End anneal exploration across the whole run.
	EpsilonStart, EpsilonEnd float64
	// SweepIterations is the number of extra minibatch-SGD iterations run
	// against the replay buffer after every episode — the actual offline
	// training; the in-episode updates mainly keep the buffer fresh.
	SweepIterations int
	// Gamma overrides the discount factor when > 0 (Fig. 18's sweep
	// trains one policy per gamma).
	Gamma float64
	// Log receives progress lines (nil discards).
	Log io.Writer
	// CheckpointPath, when set, persists the agent and episode counter
	// every CheckpointEvery episodes (and when the run stops), so an
	// interrupted training run can continue instead of starting over.
	CheckpointPath string
	// CheckpointEvery is the save cadence in episodes (<= 0 means 1).
	CheckpointEvery int
	// Resume continues from CheckpointPath when the file exists. The
	// resumed trajectory is identical to an uninterrupted run: every
	// episode's seed and epsilon are pure functions of the episode counter.
	Resume bool
	// MaxEpisodes caps how many episodes this invocation runs (0 = all
	// remaining) — with checkpointing it bounds a session without losing
	// work.
	MaxEpisodes int
}

// DefaultOptions trains long enough for a stable policy in a few minutes.
func DefaultOptions() Options {
	return Options{
		Rounds:          5,
		EpisodeCycles:   250000,
		EpochCycles:     10000,
		Seed:            77,
		EpsilonStart:    0.6,
		EpsilonEnd:      0.1,
		SweepIterations: 400,
	}
}

// Train runs the curriculum and returns the trained agent.
func Train(o Options) (*rl.DQN, error) {
	cfg := rl.DefaultDQNConfig()
	// Offline training tolerates — and converges much faster with — a
	// larger step size than the deployment-grade 1e-4 the paper quotes
	// for on-line fine-tuning stability. A deeper replay keeps the rare
	// but decisive experiences (e.g. concentration under a saturating
	// phase) alive across the whole curriculum.
	cfg.LearningRate = 1e-3
	cfg.ReplaySize = 4000
	if o.Gamma > 0 {
		cfg.Gamma = o.Gamma
	}
	agent := rl.NewDQN(cfg, sim.NewRNG(o.Seed))

	eps := Curriculum()
	total := o.Rounds * len(eps)
	start := 0
	if o.Resume && o.CheckpointPath != "" {
		switch n, err := loadCheckpoint(o.CheckpointPath, agent); {
		case err == nil:
			start = n
		case os.IsNotExist(err):
			// No checkpoint yet: a fresh run.
		default:
			return nil, fmt.Errorf("train: resuming from %s: %w", o.CheckpointPath, err)
		}
	}
	every := o.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	ckpt := &chain{path: o.CheckpointPath}

	// The loop is driven by a single global episode counter so a resumed
	// run lands on the identical curriculum entry, seed, and epsilon the
	// uninterrupted run would have used.
	saved := start
	n := start
	for n < total {
		if o.MaxEpisodes > 0 && n-start >= o.MaxEpisodes {
			break
		}
		n++
		ep := eps[(n-1)%len(eps)]
		// Linear epsilon anneal across the whole run.
		frac := float64(n-1) / float64(total-1)
		agent.Cfg.Epsilon = o.EpsilonStart + (o.EpsilonEnd-o.EpsilonStart)*frac

		if err := runEpisode(agent, ep, o, uint64(n)); err != nil {
			return nil, fmt.Errorf("train: episode %d (%s %v): %w", n, ep.Profile, ep.Region, err)
		}
		var td float64
		for it := 0; it < o.SweepIterations; it++ {
			td = agent.TrainIteration()
		}
		if o.Log != nil {
			fmt.Fprintf(o.Log, "episode %3d/%d %-13s %v eps=%.2f replay=%d td=%.3g\n",
				n, total, ep.Profile, ep.Region, agent.Cfg.Epsilon, agent.Replay.Len(), td)
		}
		if o.CheckpointPath != "" && n-saved >= every {
			if err := ckpt.save(agent, n); err != nil {
				return nil, fmt.Errorf("train: checkpointing: %w", err)
			}
			saved = n
		}
	}
	if o.CheckpointPath != "" && n > saved {
		if err := ckpt.save(agent, n); err != nil {
			return nil, fmt.Errorf("train: checkpointing: %w", err)
		}
	}
	agent.Cfg.Epsilon = o.EpsilonEnd
	return agent, nil
}

// runEpisode executes one training simulation with the shared agent.
func runEpisode(agent *rl.DQN, ep Episode, o Options, salt uint64) error {
	if _, ok := traffic.ByName(ep.Profile); !ok {
		return fmt.Errorf("unknown profile %q", ep.Profile)
	}
	apps := []adaptnoc.AppSpec{{
		Profile: ep.Profile,
		Region:  ep.Region,
		MCTiles: adaptnoc.BlockMCs(ep.Region),
	}}
	if ep.Mixed {
		apps = adaptnoc.MixedWorkload(ep.Profile, "canneal", "ferret", 0)
	}
	s, err := adaptnoc.NewSim(adaptnoc.Config{
		Design:      adaptnoc.DesignAdaptNoC,
		Apps:        apps,
		Seed:        o.Seed*1315423911 + salt,
		EpochCycles: o.EpochCycles,
		RL:          adaptnoc.RLOptions{SharedAgent: agent, Train: true},
	})
	if err != nil {
		return err
	}
	s.Run(adaptnoc.Cycle(o.EpisodeCycles))
	return nil
}
