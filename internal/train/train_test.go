package train

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"adaptnoc"
	"adaptnoc/internal/rl"
	"adaptnoc/internal/snap"
	"adaptnoc/internal/topology"
)

// lightState and heavyState are hand-made Table I observations: a sparse
// CPU phase and a bandwidth-saturating GPU phase, both currently on cmesh.
func lightState(cur topology.Kind) []float64 {
	// Per-tile per-epoch rates (see rl.Scales).
	return rl.DefaultScales().Normalize(rl.RawState{
		L1DMisses: 40, L1IMisses: 10, L2Misses: 15, RetiredInstr: 45000,
		CoherencePackets: 60, DataPackets: 45,
		RouterBufUtil: 0.02, InjBufUtil: 0.01, RouterThroughput: 0.05,
		Current: cur, Cols: 4, Rows: 4,
	})
}

func heavyState(cur topology.Kind) []float64 {
	return rl.DefaultScales().Normalize(rl.RawState{
		L1DMisses: 1900, L1IMisses: 40, L2Misses: 1250, RetiredInstr: 120000,
		CoherencePackets: 2600, DataPackets: 2300,
		RouterBufUtil: 0.5, InjBufUtil: 0.8, RouterThroughput: 0.6,
		Current: cur, Cols: 4, Rows: 8,
	})
}

func TestTrainedPolicyDiscriminatesLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultOptions()
	o.Rounds = 2
	o.EpisodeCycles = 120000
	agent, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	lq := agent.Prediction.Forward(lightState(topology.CMesh))
	hq := agent.Prediction.Forward(heavyState(topology.CMesh))
	t.Logf("light Q: mesh=%.2f cmesh=%.2f torus=%.2f tree=%.2f", lq[0], lq[1], lq[2], lq[3])
	t.Logf("heavy Q: mesh=%.2f cmesh=%.2f torus=%.2f tree=%.2f", hq[0], hq[1], hq[2], hq[3])

	// Sparse traffic must prefer concentration (Fig. 14); saturating GPU
	// traffic must avoid it (Fig. 15).
	if rl.Argmax(lq) != int(topology.CMesh) {
		t.Errorf("light phase picks %v, want cmesh", topology.Kind(rl.Argmax(lq)))
	}
	if rl.Argmax(hq) == int(topology.CMesh) {
		t.Errorf("heavy phase still picks cmesh: %v", hq)
	}
}

func TestCurriculumCoversAllSizes(t *testing.T) {
	sizes := map[string]bool{}
	for _, ep := range Curriculum() {
		if ep.Mixed {
			continue
		}
		sizes[ep.Region.String()] = true
	}
	for _, want := range []string{"2x4@(0,0)", "4x4@(0,0)", "4x6@(0,0)", "4x8@(0,0)", "8x8@(0,0)"} {
		if !sizes[want] {
			t.Errorf("curriculum missing size %s (paper trains across 2x4..8x8)", want)
		}
	}
}

func TestTrainRejectsUnknownProfile(t *testing.T) {
	o := DefaultOptions()
	o.Rounds = 1
	o.EpisodeCycles = 1000
	agent, err := Train(o)
	if err != nil || agent == nil {
		t.Fatalf("baseline training failed: %v", err)
	}
	if err := runEpisode(agent, Episode{Profile: "nope", Region: adaptnoc.Region{W: 4, H: 4}}, o, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// trainSnapshot serializes the agent's full learning state; byte equality
// of two snapshots is the strongest identity we can ask of two agents.
func trainSnapshot(t *testing.T, agent *rl.DQN) []byte {
	t.Helper()
	var w snap.Writer
	agent.Snapshot(&w)
	return w.Bytes()
}

// TestTrainCheckpointResumeIdentical is the training keystone: a run
// stopped after k episodes and resumed from its checkpoint must produce an
// agent byte-identical to one trained without interruption.
func TestTrainCheckpointResumeIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := DefaultOptions()
	o.Rounds = 1
	o.EpisodeCycles = 6000
	o.EpochCycles = 2000 // several control epochs per episode
	o.SweepIterations = 20

	full, err := Train(o)
	if err != nil {
		t.Fatal(err)
	}
	want := trainSnapshot(t, full)

	path := filepath.Join(t.TempDir(), "train.ckpt")
	co := o
	co.CheckpointPath = path
	co.CheckpointEvery = 3
	co.Resume = true
	co.MaxEpisodes = 7
	if _, err := Train(co); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint after first session: %v", err)
	}

	co.MaxEpisodes = 0
	resumed, err := Train(co)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainSnapshot(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed agent differs from uninterrupted agent: %d vs %d snapshot bytes", len(got), len(want))
	}

	// Resuming a finished run replays nothing and returns the same agent.
	again, err := Train(co)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainSnapshot(t, again); !bytes.Equal(got, want) {
		t.Fatal("resume of a finished run does not reproduce the trained agent")
	}
}

// A truncated or corrupted training checkpoint must fail the resume, not
// silently restart the curriculum.
func TestTrainResumeRejectsCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "train.ckpt")
	if err := os.WriteFile(path, []byte("ADNOCKPTnot a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.Rounds = 1
	o.EpisodeCycles = 1000
	o.CheckpointPath = path
	o.Resume = true
	o.MaxEpisodes = 1
	if _, err := Train(o); err == nil {
		t.Fatal("corrupt checkpoint resumed successfully")
	}
}
