package train

// Training checkpoints: the agent's full learning state plus the number of
// completed episodes. Everything else an episode needs — the curriculum
// entry, the per-episode seed, the epsilon anneal — is a pure function of
// that counter and the Options, so a resumed run replays the exact
// trajectory the uninterrupted run would have taken.
//
// Saves form a rolling delta chain like the simulation checkpoints: the
// first save (and every maxChain-th) writes a full blob, the rest append
// a delta frame to path+".delta". Agent weights churn densely between
// episodes, so training deltas win less than simulation deltas do, but
// the replay buffer's surviving entries and the unchanged target net
// still COPY, and the chain keeps every episode boundary recoverable for
// the cost of appends.

import (
	"fmt"
	"os"

	"adaptnoc/internal/rl"
	"adaptnoc/internal/snap"
)

// maxChain bounds the delta log length before a rebase.
const maxChain = 16

// chain is the producer state of the rolling checkpoint at path.
type chain struct {
	path     string
	prev     []snap.DeltaSection
	prevHash [32]byte
	deltas   int
}

func agentSections(agent *rl.DQN, episode int) []snap.DeltaSection {
	var tw snap.Writer
	tw.Uvarint(uint64(episode))
	agent.Snapshot(&tw)
	return []snap.DeltaSection{{Name: "train", Body: tw.Bytes(), Parts: tw.Parts()}}
}

// save persists the agent and episode counter: a full blob on the first
// call and at the rebase threshold, a delta frame otherwise.
func (c *chain) save(agent *rl.DQN, episode int) error {
	secs := agentSections(agent, episode)
	body := snap.JoinSections(secs)
	hash := snap.BodyHash(body)
	if c.prev != nil && c.deltas < maxChain {
		frame := snap.EncodeDelta(c.prev, secs, c.prevHash, hash)
		if err := snap.AppendFrame(c.path+".delta", frame); err != nil {
			return err
		}
		c.deltas++
	} else {
		tmp := c.path + ".tmp"
		if err := os.WriteFile(tmp, snap.Seal(body), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, c.path); err != nil {
			return err
		}
		os.Remove(c.path + ".delta") // described the old base; best-effort
		c.deltas = 0
	}
	c.prev, c.prevHash = secs, hash
	return nil
}

// loadCheckpoint overlays a state written by save onto an agent
// constructed with the same configuration and returns the number of
// episodes already completed. A delta log beside the file is applied to
// its longest valid prefix first. A missing file passes through
// os.IsNotExist so callers can treat it as a fresh start.
func loadCheckpoint(path string, agent *rl.DQN) (int, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if frames := snap.ReadFrameLog(path + ".delta"); len(frames) > 0 {
		if tip, _, err := snap.ApplyChainPrefix(blob, frames...); err == nil {
			blob = tip
		}
	}
	r, err := snap.Open(blob)
	if err != nil {
		return 0, err
	}
	tr, err := r.Section("train")
	if err != nil {
		return 0, err
	}
	n, err := tr.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > 1<<20 {
		return 0, fmt.Errorf("train: implausible episode counter %d", n)
	}
	if err := agent.Restore(tr); err != nil {
		return 0, err
	}
	if err := tr.Done(); err != nil {
		return 0, err
	}
	if err := r.Done(); err != nil {
		return 0, err
	}
	return int(n), nil
}
