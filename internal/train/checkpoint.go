package train

// Training checkpoints: the agent's full learning state plus the number of
// completed episodes. Everything else an episode needs — the curriculum
// entry, the per-episode seed, the epsilon anneal — is a pure function of
// that counter and the Options, so a resumed run replays the exact
// trajectory the uninterrupted run would have taken.

import (
	"fmt"
	"os"

	"adaptnoc/internal/rl"
	"adaptnoc/internal/snap"
)

// saveCheckpoint writes the agent and completed-episode counter atomically
// (temp file + rename).
func saveCheckpoint(path string, agent *rl.DQN, episode int) error {
	w := &snap.Writer{}
	var tw snap.Writer
	tw.Uvarint(uint64(episode))
	agent.Snapshot(&tw)
	w.Section("train", tw.Bytes())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, snap.Seal(w.Bytes()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint overlays a state written by saveCheckpoint onto an agent
// constructed with the same configuration and returns the number of
// episodes already completed. A missing file passes through os.IsNotExist
// so callers can treat it as a fresh start.
func loadCheckpoint(path string, agent *rl.DQN) (int, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	r, err := snap.Open(blob)
	if err != nil {
		return 0, err
	}
	tr, err := r.Section("train")
	if err != nil {
		return 0, err
	}
	n, err := tr.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > 1<<20 {
		return 0, fmt.Errorf("train: implausible episode counter %d", n)
	}
	if err := agent.Restore(tr); err != nil {
		return 0, err
	}
	if err := tr.Done(); err != nil {
		return 0, err
	}
	if err := r.Done(); err != nil {
		return 0, err
	}
	return int(n), nil
}
