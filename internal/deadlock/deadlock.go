// Package deadlock statically verifies freedom from routing-induced
// deadlock on a configured noc.Network by building the channel dependency
// graph (CDG) and checking it for cycles, the standard Dally/Towles
// criterion the paper relies on (Section II-C.3).
//
// The checker walks every (source, destination) route exactly as the
// routers would execute it — including torus dateline class transitions —
// and records a dependency edge between each consecutive pair of (channel,
// VC-class) resources. Because the Adapt-NoC reconfiguration protocol
// requires every intermediate routing state to be deadlock-free (Lysne's
// methodology), the fabric tests run this checker on each stage of the
// reconfiguration sequence, not just the endpoints.
package deadlock

import (
	"fmt"
	"strings"

	"adaptnoc/internal/noc"
)

// resource is a CDG node: a directed channel together with the virtual
// network and the dateline VC class a packet would occupy on it. The vnet
// matters because a channel's buffering is partitioned into per-vnet VCs
// (request packets can never block reply VCs), so a combined-topology
// design like torus+tree is cycle-free exactly because its two virtual
// networks never share buffer resources. Channels into routers that do not
// use dateline classing collapse to class 0 (all VCs of the vnet shared).
type resource struct {
	ch    *noc.Channel
	vnet  noc.VNet
	class int
}

// Checker accumulates route walks into a channel dependency graph.
type Checker struct {
	net   *noc.Network
	edges map[resource]map[resource]bool
	// walkedPairs guards against quadratic rebuilds in property tests.
	walks int
}

// NewChecker returns an empty checker for the network's current tables.
func NewChecker(net *noc.Network) *Checker {
	return &Checker{net: net, edges: make(map[resource]map[resource]bool)}
}

// maxPathLen bounds route walks; a longer walk means the routing function
// does not make progress (livelock), reported as an error.
func (c *Checker) maxPathLen() int { return 4 * c.net.Cfg.NumNodes() }

// WalkRoute traces the route of a (src, dst, vnet) triple through the
// current tables, adding its dependencies. It returns the channels
// traversed so tests can assert path properties.
func (c *Checker) WalkRoute(src, dst noc.NodeID, vnet noc.VNet) ([]*noc.Channel, error) {
	c.walks++
	start := c.net.ServingRouter(src)
	target := c.net.ServingRouter(dst)
	if start < 0 || target < 0 {
		return nil, fmt.Errorf("deadlock: unattached tile (src %d -> %d, dst %d -> %d)", src, start, dst, target)
	}
	var path []*noc.Channel
	var prev *resource
	cur := start
	class := 0
	lastDim := int8(-1)
	for steps := 0; ; steps++ {
		if steps > c.maxPathLen() {
			return nil, fmt.Errorf("deadlock: route %d->%d (%s) does not terminate (walked %d hops)",
				src, dst, vnet, steps)
		}
		r := c.net.Router(cur)
		if r.Disabled() {
			return nil, fmt.Errorf("deadlock: route %d->%d (%s) enters disabled router %d", src, dst, vnet, cur)
		}
		tbl := r.Table(vnet)
		if tbl == nil {
			return nil, fmt.Errorf("deadlock: router %d has no %s table on route %d->%d", cur, vnet, src, dst)
		}
		e, ok := tbl.Lookup(dst)
		if !ok {
			return nil, fmt.Errorf("deadlock: router %d has no %s route to %d (from %d)", cur, vnet, dst, src)
		}
		ch := r.OutputChannel(int(e.OutPort))
		if ch == nil {
			return nil, fmt.Errorf("deadlock: router %d port %d routed but unattached (route %d->%d %s)",
				cur, e.OutPort, src, dst, vnet)
		}
		if ch.To.Kind == noc.EndNI {
			// Ejection port: the route terminates here.
			if cur != target {
				return nil, fmt.Errorf("deadlock: route %d->%d (%s) ejects at %d, not serving router %d",
					src, dst, vnet, cur, target)
			}
			return path, nil
		}
		if !ch.Active() {
			return nil, fmt.Errorf("deadlock: route %d->%d (%s) uses inactive channel %v->%v",
				src, dst, vnet, ch.From, ch.To)
		}
		// Dateline class transition exactly as Router.stageRC computes it.
		dim := portDim(int(e.OutPort))
		base := class
		if dim != lastDim {
			base = 0
		}
		switch e.Class {
		case noc.ClassKeep:
			class = base
		case noc.ClassSet1:
			class = 1
		case noc.ClassSet0:
			class = 0
		}
		lastDim = dim

		downClass := class
		if ch.To.Kind == noc.EndRouter && !c.net.Router(ch.To.Router).UsesDateline(vnet) {
			downClass = 0
		}
		res := resource{ch: ch, vnet: vnet, class: downClass}
		if prev != nil {
			c.addEdge(*prev, res)
		}
		prev = &res
		path = append(path, ch)

		if ch.To.Kind != noc.EndRouter {
			return nil, fmt.Errorf("deadlock: route %d->%d (%s) leaves the router graph at %v",
				src, dst, vnet, ch.To)
		}
		cur = ch.To.Router
	}
}

func (c *Checker) addEdge(a, b resource) {
	m := c.edges[a]
	if m == nil {
		m = make(map[resource]bool)
		c.edges[a] = m
	}
	m[b] = true
}

// FindCycle returns a description of a dependency cycle, or "" if acyclic.
func (c *Checker) FindCycle() string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[resource]int)
	var stack []resource

	var visit func(r resource) string
	visit = func(r resource) string {
		color[r] = grey
		stack = append(stack, r)
		for next := range c.edges[r] {
			switch color[next] {
			case grey:
				// Found a cycle; format it from the stack.
				var b strings.Builder
				start := 0
				for i, s := range stack {
					if s == next {
						start = i
						break
					}
				}
				for _, s := range stack[start:] {
					fmt.Fprintf(&b, "%v->%v[%s c%d] ", s.ch.From, s.ch.To, s.vnet, s.class)
				}
				return b.String()
			case white:
				if cyc := visit(next); cyc != "" {
					return cyc
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[r] = black
		return ""
	}
	for r := range c.edges {
		if color[r] == white {
			if cyc := visit(r); cyc != "" {
				return cyc
			}
		}
	}
	return ""
}

// CheckAllPairs walks every attached (src, dst) pair restricted to the
// given tiles on both virtual networks and verifies the combined CDG is
// acyclic. tiles == nil means every attached tile.
func CheckAllPairs(net *noc.Network, tiles []noc.NodeID) error {
	if tiles == nil {
		for t := noc.NodeID(0); int(t) < net.Cfg.NumNodes(); t++ {
			if net.ServingRouter(t) >= 0 {
				tiles = append(tiles, t)
			}
		}
	}
	c := NewChecker(net)
	for _, s := range tiles {
		for _, d := range tiles {
			if s == d {
				continue
			}
			for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
				if _, err := c.WalkRoute(s, d, v); err != nil {
					return err
				}
			}
		}
	}
	if cyc := c.FindCycle(); cyc != "" {
		return fmt.Errorf("deadlock: channel dependency cycle: %s", cyc)
	}
	return nil
}

// portDim mirrors noc's port-dimension convention (East/West and the row
// adaptable ports are X; North/South and column adaptable ports are Y).
func portDim(port int) int8 {
	switch port {
	case noc.PortEast, noc.PortWest, 5, 6:
		return 0
	case noc.PortNorth, noc.PortSouth, 7, 8:
		return 1
	default:
		return int8(10 + port)
	}
}
