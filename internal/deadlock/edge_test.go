package deadlock

import (
	"strings"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/obs"
	"adaptnoc/internal/sim"
	"adaptnoc/internal/topology"
)

// wrapVCWatcher asserts, live, that every flit on a wraparound (dateline)
// segment occupies an escape VC — the upper half of its vnet's VC space.
// In a torus region the only adaptable-kind channels are the wraps.
type wrapVCWatcher struct {
	noc.NopTracer
	vcsPerVNet int
	wrapFlits  int
	violations []string
}

func (w *wrapVCWatcher) LinkTraversed(ch *noc.Channel, f *noc.Flit, sent, arrived sim.Cycle) {
	if ch.Kind != noc.ChanAdaptable {
		return
	}
	w.wrapFlits++
	k := f.VC - int(f.Pkt.VNet)*w.vcsPerVNet
	if k < w.vcsPerVNet/2 {
		w.violations = append(w.violations,
			ch.From.String()+"->"+ch.To.String()+" carried a class-0 flit")
	}
}

// TestTorusWraparoundUsesEscapeVCsAtRuntime drives real traffic across the
// datelines of a full-chip torus and verifies the static guarantee the CDG
// checker relies on actually holds cycle by cycle: a flit never enters a
// wraparound segment in the lower (class-0) VC half.
func TestTorusWraparoundUsesEscapeVCsAtRuntime(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 8, H: 8}
	topology.ConfigureTorusRegion(net, reg)

	watch := &wrapVCWatcher{vcsPerVNet: cfg.VCsPerVNet}
	net.SetTracer(watch)
	net.SetVerifier(32, obs.Verify)

	k := sim.NewKernel()
	k.Register(net)
	// Row and column shifts of 5 force minimal routes through the wraps
	// in both directions; both vnets participate.
	w := cfg.Width
	var sent int
	for round := 0; round < 3; round++ {
		for _, src := range reg.Tiles(w) {
			c := noc.CoordOf(src, w)
			dst := noc.Coord{X: (c.X + 5) % reg.W, Y: (c.Y + 5) % reg.H}.ID(w)
			if dst == src {
				continue
			}
			net.Enqueue(net.NewPacket(src, dst, noc.ClassData, noc.VNet(round%noc.NumVNets), 0), 0)
			sent++
		}
	}
	k.Run(20000)
	if !net.Quiescent() || net.PendingPackets() != 0 {
		t.Fatal("torus did not drain")
	}
	if net.TotalDelivered != int64(sent) {
		t.Fatalf("delivered %d of %d packets", net.TotalDelivered, sent)
	}
	if watch.wrapFlits == 0 {
		t.Fatal("no flit ever crossed a wraparound segment; test drives nothing")
	}
	if len(watch.violations) > 0 {
		t.Fatalf("%d escape-VC violations on wrap segments, first: %s",
			len(watch.violations), watch.violations[0])
	}
	if err := obs.Verify(net, k.Now()); err != nil {
		t.Fatal(err)
	}
}

// TestTorusWrapRoutesAreMinimal pins the ring-direction choice: a border-
// to-border route takes the single wrap hop, not the long way across, and
// a route that wraps traverses exactly one adaptable segment per wrapped
// dimension.
func TestTorusWrapRoutesAreMinimal(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 8, H: 8}
	topology.ConfigureTorusRegion(net, reg)
	c := NewChecker(net)

	id := func(x, y int) noc.NodeID { return noc.Coord{X: x, Y: y}.ID(cfg.Width) }
	cases := []struct {
		src, dst  noc.NodeID
		hops      int // router-to-router channels on the walk
		wrapLinks int
	}{
		{id(0, 0), id(7, 0), 1, 1}, // straight across the X dateline
		{id(7, 3), id(1, 3), 2, 1}, // wrap east then one mesh hop
		{id(3, 0), id(3, 7), 1, 1}, // straight across the Y dateline
		{id(2, 2), id(5, 2), 3, 0}, // interior: no wrap on minimal path
		{id(0, 0), id(7, 7), 2, 2}, // corner to corner: both datelines
	}
	for _, tc := range cases {
		path, err := c.WalkRoute(tc.src, tc.dst, noc.VNetRequest)
		if err != nil {
			t.Fatalf("route %d->%d: %v", tc.src, tc.dst, err)
		}
		wraps := 0
		for _, ch := range path {
			if ch.Kind == noc.ChanAdaptable {
				wraps++
			}
		}
		if len(path) != tc.hops || wraps != tc.wrapLinks {
			t.Errorf("route %d->%d took %d hops (%d wraps), want %d (%d)",
				tc.src, tc.dst, len(path), wraps, tc.hops, tc.wrapLinks)
		}
	}
}

// TestMinimumWrapRingIsDeadlockFree covers the smallest rings that carry a
// wrap link (W or H = 3): the tie-breaking and dateline logic must hold at
// the boundary where wrap and mesh distances are closest.
func TestMinimumWrapRingIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	for _, reg := range []topology.Region{
		{X: 0, Y: 0, W: 3, H: 3},
		{X: 5, Y: 5, W: 3, H: 3},
		{X: 0, Y: 0, W: 3, H: 8},
		{X: 0, Y: 0, W: 8, H: 3},
	} {
		net := noc.NewNetwork(cfg)
		topology.ConfigureTorusRegion(net, reg)
		if err := CheckAllPairs(net, reg.Tiles(cfg.Width)); err != nil {
			t.Errorf("minimal-wrap torus %v: %v", reg, err)
		}
	}
}

// TestBrokenRoutingFunctionIsDetected is the regression the checker must
// never lose: a routing function that forgets the dateline operation on
// wrap hops (tables keep class 0 while VC classing stays enabled — the
// plausible real-world bug, unlike stripping dateline support entirely)
// creates a ring dependency cycle that CheckAllPairs must report.
func TestBrokenRoutingFunctionIsDetected(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 8, H: 8}
	topology.ConfigureTorusRegion(net, reg)

	// The sabotage: reinstall every table with ClassSet1 flattened to
	// ClassKeep. Dateline classing remains on, so class-0 VCs stay a
	// shared ring resource end to end.
	for _, id := range reg.Tiles(cfg.Width) {
		r := net.Router(id)
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			old := r.Table(v)
			fresh := noc.NewRoutingTable(cfg.NumNodes())
			for _, d := range old.Destinations() {
				e, _ := old.Lookup(d)
				op := e.Class
				if op == noc.ClassSet1 {
					op = noc.ClassKeep
				}
				fresh.Set(d, int(e.OutPort), op)
			}
			r.SetTable(v, fresh)
		}
	}
	err := CheckAllPairs(net, reg.Tiles(cfg.Width))
	if err == nil {
		t.Fatal("dateline-free routing function went undetected")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error kind: %v", err)
	}
	// The reported cycle must implicate a wraparound (adaptable) segment
	// in class 0 — the exact resource the dateline op exists to split.
	if !strings.Contains(err.Error(), "c0") {
		t.Fatalf("cycle does not mention class-0 resources: %v", err)
	}
}
