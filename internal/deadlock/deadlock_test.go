package deadlock

import (
	"strings"
	"testing"

	"adaptnoc/internal/noc"
	"adaptnoc/internal/topology"
)

func TestMeshIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	topology.BuildMesh(net)
	if err := CheckAllPairs(net, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCMeshRegionIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 4, W: 4, H: 4}
	topology.ConfigureCMeshRegion(net, reg)
	if err := CheckAllPairs(net, reg.Tiles(cfg.Width)); err != nil {
		t.Fatal(err)
	}
}

func TestTorusRegionIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	for _, reg := range []topology.Region{
		{X: 0, Y: 0, W: 4, H: 4},
		{X: 0, Y: 0, W: 8, H: 8},
		{X: 4, Y: 0, W: 4, H: 8},
		{X: 0, Y: 0, W: 2, H: 4},
	} {
		net := noc.NewNetwork(cfg)
		topology.ConfigureTorusRegion(net, reg)
		if err := CheckAllPairs(net, reg.Tiles(cfg.Width)); err != nil {
			t.Errorf("torus %v: %v", reg, err)
		}
	}
}

func TestTorusWithoutDatelineHasCycle(t *testing.T) {
	// Sanity for the checker itself: disabling dateline classing on a
	// torus ring must surface a dependency cycle. (A 4-ring with minimal
	// routing and ties broken away from the wrap link is genuinely
	// acyclic, so use the full 8-wide rings where the cycle is real.)
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 8, H: 8}
	topology.ConfigureTorusRegion(net, reg)

	// Strip the dateline class ops: rebuild tables with ClassKeep on wraps
	// by reinstalling every route with ClassKeep.
	for _, id := range reg.Tiles(cfg.Width) {
		r := net.Router(id)
		for _, v := range []noc.VNet{noc.VNetRequest, noc.VNetReply} {
			old := r.Table(v)
			fresh := noc.NewRoutingTable(cfg.NumNodes())
			for _, d := range old.Destinations() {
				e, _ := old.Lookup(d)
				fresh.Set(d, int(e.OutPort), noc.ClassKeep)
			}
			r.SetTable(v, fresh)
		}
		r.SetDateline(false)
	}
	err := CheckAllPairs(net, reg.Tiles(cfg.Width))
	if err == nil {
		t.Fatal("expected a dependency cycle on a dateline-free torus")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

func TestTreeRegionIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	for _, tc := range []struct {
		reg  topology.Region
		root noc.Coord
	}{
		{topology.Region{X: 0, Y: 0, W: 4, H: 4}, noc.Coord{X: 0, Y: 0}},
		{topology.Region{X: 0, Y: 0, W: 4, H: 4}, noc.Coord{X: 2, Y: 1}},
		{topology.Region{X: 0, Y: 0, W: 4, H: 8}, noc.Coord{X: 1, Y: 3}},
		{topology.Region{X: 2, Y: 2, W: 2, H: 4}, noc.Coord{X: 2, Y: 2}},
		{topology.Region{X: 0, Y: 0, W: 8, H: 8}, noc.Coord{X: 3, Y: 4}},
	} {
		net := noc.NewNetwork(cfg)
		topology.ConfigureTreeRegion(net, tc.reg, tc.root.ID(cfg.Width), nil)
		if err := CheckAllPairs(net, tc.reg.Tiles(cfg.Width)); err != nil {
			t.Errorf("tree %v root %v: %v", tc.reg, tc.root, err)
		}
	}
}

func TestTorusTreeRegionIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.VCsPerVNet = 2
	for _, tc := range []struct {
		reg  topology.Region
		root noc.Coord
	}{
		{topology.Region{X: 0, Y: 0, W: 4, H: 4}, noc.Coord{X: 0, Y: 0}},
		{topology.Region{X: 0, Y: 0, W: 4, H: 8}, noc.Coord{X: 2, Y: 4}},
		{topology.Region{X: 0, Y: 0, W: 8, H: 8}, noc.Coord{X: 4, Y: 4}},
		{topology.Region{X: 4, Y: 4, W: 4, H: 4}, noc.Coord{X: 6, Y: 5}},
	} {
		net := noc.NewNetwork(cfg)
		topology.ConfigureTorusTreeRegion(net, tc.reg, tc.root.ID(cfg.Width), nil)
		if err := CheckAllPairs(net, tc.reg.Tiles(cfg.Width)); err != nil {
			t.Errorf("torus+tree %v root %v: %v", tc.reg, tc.root, err)
		}
	}
}

func TestFlattenedButterflyIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.RouterLatency = 3
	cfg.VCsPerVNet = 4
	net := noc.NewNetwork(cfg)
	topology.BuildFlattenedButterfly(net)
	if err := CheckAllPairs(net, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortcutMeshIsDeadlockFree(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	topology.BuildShortcutMesh(net, []topology.Shortcut{
		{A: 0, B: 7}, {A: 56, B: 63}, {A: 0, B: 56}, {A: 16, B: 23},
	})
	if err := CheckAllPairs(net, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWalkRouteReportsMissingRoute(t *testing.T) {
	cfg := noc.DefaultConfig()
	net := noc.NewNetwork(cfg)
	reg := topology.Region{X: 0, Y: 0, W: 4, H: 4}
	topology.ConfigureMeshRegion(net, reg)
	c := NewChecker(net)
	// Tile 7 is outside the configured region: unattached.
	if _, err := c.WalkRoute(0, 7, noc.VNetRequest); err == nil {
		t.Fatal("expected error for route to unattached tile")
	}
}

func TestFindCycleOnSyntheticGraph(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	net := noc.NewNetwork(cfg)
	// Ring of four routers 0 -> 1 -> 3 -> 2 -> 0 with circular routes.
	topology.EnsureAdaptPorts(net.Router(0))
	net.ConnectBidir(0, noc.PortEast, 1, noc.PortWest, noc.ChanMesh, 1, 1)
	net.ConnectBidir(1, noc.PortSouth, 3, noc.PortNorth, noc.ChanMesh, 1, 1)
	net.ConnectBidir(3, noc.PortWest, 2, noc.PortEast, noc.ChanMesh, 1, 1)
	net.ConnectBidir(2, noc.PortNorth, 0, noc.PortSouth, noc.ChanMesh, 1, 1)
	for t0 := noc.NodeID(0); t0 < 4; t0++ {
		net.AttachLocal(t0, []noc.NodeID{t0}, 1)
	}
	// Force clockwise-only routing: each router forwards clockwise.
	next := map[noc.NodeID]int{0: noc.PortEast, 1: noc.PortSouth, 3: noc.PortWest, 2: noc.PortNorth}
	for id := noc.NodeID(0); id < 4; id++ {
		tbl := noc.NewRoutingTable(4)
		for dst := noc.NodeID(0); dst < 4; dst++ {
			if dst == id {
				tbl.Set(dst, noc.PortLocal, noc.ClassKeep)
			} else {
				tbl.Set(dst, next[id], noc.ClassKeep)
			}
		}
		net.Router(id).SetTable(noc.VNetRequest, tbl)
		net.Router(id).SetTable(noc.VNetReply, tbl)
	}
	err := CheckAllPairs(net, []noc.NodeID{0, 1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("clockwise ring not flagged: %v", err)
	}
}

func TestCheckerCatchesLivelock(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 1
	net := noc.NewNetwork(cfg)
	net.ConnectBidir(0, noc.PortEast, 1, noc.PortWest, noc.ChanMesh, 1, 1)
	net.AttachLocal(0, []noc.NodeID{0}, 1)
	net.AttachLocal(1, []noc.NodeID{1}, 1)
	// Ping-pong routes that never eject.
	t0 := noc.NewRoutingTable(2)
	t0.Set(0, noc.PortLocal, noc.ClassKeep)
	t0.Set(1, noc.PortEast, noc.ClassKeep)
	t1 := noc.NewRoutingTable(2)
	t1.Set(0, noc.PortWest, noc.ClassKeep)
	t1.Set(1, noc.PortWest, noc.ClassKeep) // bounces its own tile back!
	for v := noc.VNet(0); v < noc.NumVNets; v++ {
		net.Router(0).SetTable(v, t0)
		net.Router(1).SetTable(v, t1)
	}
	c := NewChecker(net)
	if _, err := c.WalkRoute(0, 1, noc.VNetRequest); err == nil {
		t.Fatal("non-terminating route accepted")
	}
}
