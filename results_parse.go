package adaptnoc

import (
	"fmt"
	"strconv"
	"strings"
)

// ResultsSummary is the machine-readable form of the Results.String table,
// recovered by ParseResultsSummary. Experiment post-processing (and the
// golden-file regression test) round-trips through it instead of scraping
// ad hoc.
type ResultsSummary struct {
	Design   string
	Cycles   int64
	EnergyUJ float64
	DynUJ    float64
	StaticUJ float64
	Apps     []AppSummary
}

// AppSummary is one parsed application line of a Results table.
type AppSummary struct {
	Profile  string
	Region   Region
	TotalLat float64
	NetLat   float64
	QueueLat float64
	Hops     float64
	Packets  int64

	// Dropped is 0 when the line carries no drop= field (fault-free runs
	// omit it).
	Dropped int64

	// ExecTime is -1 when the line carries no exec= field.
	ExecTime int64

	// Adapt designs only; Kind is "" and Selections nil otherwise.
	Kind       string
	Reconfigs  int64
	Selections map[string]float64
}

// ParseResultsSummary parses the exact text Results.String renders back
// into a structured summary. It is deliberately strict about field shapes
// but tolerant of the optional suffixes (exec=, kind=/reconf=/sel=[...]),
// and never panics on malformed input.
func ParseResultsSummary(s string) (ResultsSummary, error) {
	var out ResultsSummary
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return out, fmt.Errorf("adaptnoc: empty results table")
	}
	n, err := fmt.Sscanf(lines[0], "design=%s cycles=%d energy=%fuJ (dyn %f, static %f)",
		&out.Design, &out.Cycles, &out.EnergyUJ, &out.DynUJ, &out.StaticUJ)
	if err != nil || n != 5 {
		return out, fmt.Errorf("adaptnoc: bad results header %q", lines[0])
	}
	for _, line := range lines[1:] {
		app, err := parseAppLine(line)
		if err != nil {
			return out, err
		}
		out.Apps = append(out.Apps, app)
	}
	return out, nil
}

func parseAppLine(line string) (AppSummary, error) {
	app := AppSummary{ExecTime: -1}
	if !strings.HasPrefix(line, "  ") {
		return app, fmt.Errorf("adaptnoc: app line %q lacks indent", line)
	}

	// The sel=[...] suffix contains spaces; split it off before fielding.
	rest := line
	if i := strings.Index(rest, " sel=["); i >= 0 {
		selPart := rest[i+len(" sel=["):]
		j := strings.Index(selPart, "]")
		if j < 0 {
			return app, fmt.Errorf("adaptnoc: unterminated sel=[ in %q", line)
		}
		if strings.TrimSpace(selPart[j+1:]) != "" {
			return app, fmt.Errorf("adaptnoc: trailing junk after sel list in %q", line)
		}
		app.Selections = make(map[string]float64)
		for _, tok := range strings.Fields(selPart[:j]) {
			kind, pct, ok := strings.Cut(tok, ":")
			if !ok || !strings.HasSuffix(pct, "%") {
				return app, fmt.Errorf("adaptnoc: bad selection %q in %q", tok, line)
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(pct, "%"), 64)
			if err != nil {
				return app, fmt.Errorf("adaptnoc: bad selection %q in %q", tok, line)
			}
			app.Selections[kind] = v / 100
		}
		rest = rest[:i]
	}

	fields := strings.Fields(rest)
	// profile region lat=T (net N + queue Q) hops=H pkts=P [exec=E] [kind=K reconf=R]
	if len(fields) < 10 {
		return app, fmt.Errorf("adaptnoc: short app line %q", line)
	}
	app.Profile = fields[0]
	var reg Region
	if n, err := fmt.Sscanf(fields[1], "%dx%d@(%d,%d)", &reg.W, &reg.H, &reg.X, &reg.Y); err != nil || n != 4 {
		return app, fmt.Errorf("adaptnoc: bad region %q in %q", fields[1], line)
	}
	app.Region = reg

	var err error
	take := func(i int, prefix, suffix string) float64 {
		if err != nil {
			return 0
		}
		tok := fields[i]
		if !strings.HasPrefix(tok, prefix) || !strings.HasSuffix(tok, suffix) {
			err = fmt.Errorf("adaptnoc: expected %s…%s at %q in %q", prefix, suffix, tok, line)
			return 0
		}
		v, perr := strconv.ParseFloat(tok[len(prefix):len(tok)-len(suffix)], 64)
		if perr != nil {
			err = fmt.Errorf("adaptnoc: bad number %q in %q", tok, line)
		}
		return v
	}
	app.TotalLat = take(2, "lat=", "")
	if fields[3] != "(net" || fields[5] != "+" || fields[6] != "queue" {
		return app, fmt.Errorf("adaptnoc: bad latency breakdown in %q", line)
	}
	app.NetLat = take(4, "", "")
	app.QueueLat = take(7, "", ")")
	app.Hops = take(8, "hops=", "")
	app.Packets = int64(take(9, "pkts=", ""))
	if err != nil {
		return app, err
	}

	for i := 10; i < len(fields); i++ {
		tok := fields[i]
		switch {
		case strings.HasPrefix(tok, "drop="):
			v, perr := strconv.ParseInt(tok[len("drop="):], 10, 64)
			if perr != nil {
				return app, fmt.Errorf("adaptnoc: bad drop %q in %q", tok, line)
			}
			app.Dropped = v
		case strings.HasPrefix(tok, "exec="):
			v, perr := strconv.ParseInt(tok[len("exec="):], 10, 64)
			if perr != nil {
				return app, fmt.Errorf("adaptnoc: bad exec %q in %q", tok, line)
			}
			app.ExecTime = v
		case strings.HasPrefix(tok, "kind="):
			app.Kind = tok[len("kind="):]
		case strings.HasPrefix(tok, "reconf="):
			v, perr := strconv.ParseInt(tok[len("reconf="):], 10, 64)
			if perr != nil {
				return app, fmt.Errorf("adaptnoc: bad reconf %q in %q", tok, line)
			}
			app.Reconfigs = v
		default:
			return app, fmt.Errorf("adaptnoc: unexpected field %q in %q", tok, line)
		}
	}
	return app, nil
}
