package adaptnoc

import "testing"

func TestParseAppSpecs(t *testing.T) {
	apps, err := ParseAppSpecs("bfs:0,0,4,8:tree; canneal:4,0,4,4:cmesh; ferret:4,4,4,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 3 {
		t.Fatalf("%d apps", len(apps))
	}
	if apps[0].Static != Tree || apps[1].Static != CMesh || apps[2].Static != Mesh {
		t.Fatalf("statics wrong: %v %v %v", apps[0].Static, apps[1].Static, apps[2].Static)
	}
	if apps[0].Region != (Region{X: 0, Y: 0, W: 4, H: 8}) {
		t.Fatalf("region %v", apps[0].Region)
	}
	if len(apps[0].MCTiles) != 4 {
		t.Fatalf("GPU region got %d MCs, want 4", len(apps[0].MCTiles))
	}
	// The parsed specs must build a working sim.
	if _, err := NewSim(Config{Design: DesignAdaptNoRL, Apps: apps, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAppSpecsErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"unknownapp:0,0,4,4",
		"bfs:0,0,4",
		"bfs:0,0,x,4",
		"bfs:0,0,4,4:warp",
		"bfs:0,0,0,4",
		"bfs",
		"bfs:0,0,4,4:tree:extra",
	} {
		if _, err := ParseAppSpecs(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParseKindAndDesign(t *testing.T) {
	for _, k := range []Kind{Mesh, CMesh, Torus, Tree, TorusTree} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%v) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("hypercube"); err == nil {
		t.Error("unknown kind accepted")
	}
	for d := DesignBaseline; d < NumDesigns; d++ {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDesign(%v) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDesign("hypothetical"); err == nil {
		t.Error("unknown design accepted")
	}
}
