package adaptnoc

import (
	"testing"
	"testing/quick"

	"adaptnoc/internal/noc"
)

func TestBlockMCsProvisioning(t *testing.T) {
	// One MC per 2x4 block (Section II-C.2).
	for _, tc := range []struct {
		reg  Region
		want int
	}{
		{Region{W: 2, H: 4}, 1},
		{Region{W: 4, H: 4}, 2},
		{Region{W: 4, H: 8}, 4},
		{Region{W: 8, H: 8}, 8},
	} {
		if got := len(BlockMCs(tc.reg)); got != tc.want {
			t.Errorf("BlockMCs(%v) = %d MCs, want %d", tc.reg, got, tc.want)
		}
	}
}

func TestBlockMCsInsideRegion(t *testing.T) {
	f := func(x, y, w, h uint8) bool {
		reg := Region{X: int(x % 7), Y: int(y % 7), W: int(w%4) + 1, H: int(h%4) + 1}
		if reg.X+reg.W > 8 || reg.Y+reg.H > 8 {
			return true
		}
		for _, mc := range BlockMCs(reg) {
			if !reg.Contains(noc.CoordOf(mc, 8)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkloadShape(t *testing.T) {
	apps := MixedWorkload("bfs", "canneal", "ferret", 1000)
	if len(apps) != 3 {
		t.Fatalf("%d apps", len(apps))
	}
	if apps[0].Region.Size() != 32 || apps[1].Region.Size() != 16 || apps[2].Region.Size() != 16 {
		t.Fatal("region sizes wrong")
	}
	total := 0
	for i, a := range apps {
		total += a.Region.Size()
		if a.InstrBudget != 1000 {
			t.Errorf("app %d budget %d", i, a.InstrBudget)
		}
		for j := i + 1; j < len(apps); j++ {
			if a.Region.Overlaps(apps[j].Region) {
				t.Errorf("apps %d and %d overlap", i, j)
			}
		}
	}
	if total != 64 {
		t.Fatalf("workload covers %d of 64 tiles", total)
	}
}

func TestCentralMCMinimizesDistance(t *testing.T) {
	reg := Region{W: 4, H: 8}
	spec := AppSpec{Region: reg, MCTiles: BlockMCs(reg)}
	mc := centralMC(spec, 8)
	c := noc.CoordOf(mc, 8)
	// The most central of (0,0),(2,0),(0,4),(2,4) for a 4x8 region is
	// (2,4) — nearest the geometric centre (1.5, 3.5).
	if c.X != 2 || c.Y != 4 {
		t.Fatalf("centralMC = %v", c)
	}
}

func TestLoadPolicyRejectsGarbage(t *testing.T) {
	if _, err := LoadPolicy([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if p := DefaultPolicy(); p == nil {
		t.Fatal("no embedded policy in this build")
	}
}
